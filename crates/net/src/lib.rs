#![warn(missing_docs)]
//! # mmx-net
//!
//! The mmX network layer: many nodes, one AP (§4, §7).
//!
//! mmX operates in two phases. In the *initialization* phase the AP
//! assigns each node a frequency channel sized to its demand over an
//! out-of-band control link ([`control`]); in the *transmission* phase
//! the nodes stream concurrently, separated by frequency ([`fdm`]) and —
//! when demand exceeds the band — by space via the AP's time-modulated
//! array ([`sdm`]). This crate simulates all of it:
//!
//! * [`event`] — a deterministic discrete-event engine.
//! * [`fdm`] — band plans and the demand-driven channel allocator.
//! * [`sdm`] — TMA harmonic assignment and channel reuse.
//! * [`control`] — the join/grant initialization protocol.
//! * [`interference`] — SINR: co-channel TMA leakage, adjacent-channel
//!   leakage, thermal noise.
//! * [`node`] / [`ap`] — the station models.
//! * [`sim`] — the network simulator producing per-node SNR/PER/goodput
//!   (Fig. 13's engine).
//! * [`energy`] — network-wide energy accounting.
//! * [`arq`] — stop-and-wait link-layer reliability with the ACK on the
//!   out-of-band control plane (extension; keeps the node TX-only).
//! * [`faults`] — seeded, deterministic fault injection: control-plane
//!   loss/duplication/delay, node churn, correlated blockage bursts,
//!   AP restart.
//! * [`link`] — the node-side control-link state machine
//!   (Idle → Joining → Granted → Outage → Rejoining) and retransmit
//!   backoff.
//! * [`pool`] / [`streams`] — the intra-sim worker pool and per-node
//!   RNG streams behind the gather→commit phase-parallel event loop
//!   (DESIGN.md §9).
//! * [`multi_ap`] — cross-AP coordination: coverage-aware channel
//!   reuse planning, the epoch-stamped slot arbiter, roaming handoff
//!   and the multi-cell simulator (DESIGN.md §10).

pub mod ap;
pub mod arq;
pub mod control;
pub mod energy;
pub mod event;
pub mod faults;
pub mod fdm;
pub mod interference;
pub mod link;
pub mod multi_ap;
pub mod node;
pub mod pool;
pub mod sdm;
pub mod sim;
pub mod streams;

pub use ap::ApId;
pub use event::{EventQueue, ScheduleError};
pub use faults::{FaultConfig, FaultInjector};
pub use fdm::{BandPlan, ChannelAssignment};
pub use link::{Backoff, LinkState, NodeLink};
pub use sim::{NetworkReport, NetworkSim, NodeReport, RecoveryReport};
