//! The node station model: radio + antenna + traffic source.

use crate::control::NodeId;
use mmx_antenna::beams::NodeBeams;
use mmx_channel::response::Pose;
use mmx_rf::frontend::NodeFrontEnd;
use mmx_rf::power::PowerLedger;
use mmx_units::{BitRate, Seconds, Watts};

/// A mmX node in the network simulator: pose, radio hardware, and a
/// constant-bit-rate traffic source (the IoT-camera workload of §1).
#[derive(Debug, Clone)]
pub struct NodeStation {
    /// Control-plane identifier.
    pub id: NodeId,
    /// Position and facing in the room.
    pub pose: Pose,
    /// Sustained data-rate demand.
    pub demand: BitRate,
    /// Application payload per packet, bytes.
    pub payload_bytes: usize,
    /// When the node starts transmitting (simulation time).
    pub active_from: Seconds,
    /// When the node leaves the network (`None` = stays for the run).
    pub active_until: Option<Seconds>,
    front_end: NodeFrontEnd,
    beams: NodeBeams,
    power: PowerLedger,
}

impl NodeStation {
    /// Creates a node with the paper's hardware at the given pose and
    /// demand. The demand is capped by the switch's 100 Mbps limit.
    pub fn new(id: NodeId, pose: Pose, demand: BitRate) -> Self {
        let front_end = NodeFrontEnd::standard();
        let demand = front_end.switch().cap_rate(demand);
        NodeStation {
            id,
            pose,
            demand,
            payload_bytes: 1024,
            active_from: Seconds::ZERO,
            active_until: None,
            beams: NodeBeams::orthogonal(front_end.channel()),
            front_end,
            power: PowerLedger::mmx_node(),
        }
    }

    /// Restricts the node to an activity window (churn modeling): it
    /// joins at `from` and leaves at `until`.
    pub fn with_activity(mut self, from: Seconds, until: Option<Seconds>) -> Self {
        if let Some(u) = until {
            assert!(u > from, "activity window is empty");
        }
        self.active_from = from;
        self.active_until = until;
        self
    }

    /// True when the node transmits at time `t`.
    pub fn is_active(&self, t: Seconds) -> bool {
        t >= self.active_from && self.active_until.map(|u| t < u).unwrap_or(true)
    }

    /// An HD camera node: 10 Mbps, 1400-byte packets (§1 footnote: "HD
    /// video streaming requires 8-10 Mbps").
    pub fn hd_camera(id: NodeId, pose: Pose) -> Self {
        let mut n = Self::new(id, pose, BitRate::from_mbps(10.0));
        n.payload_bytes = 1400;
        n
    }

    /// The radio front end.
    pub fn front_end(&self) -> &NodeFrontEnd {
        &self.front_end
    }

    /// Mutable front end (for tuning grants).
    pub fn front_end_mut(&mut self) -> &mut NodeFrontEnd {
        &mut self.front_end
    }

    /// The two OTAM beams.
    pub fn beams(&self) -> &NodeBeams {
        &self.beams
    }

    /// DC power draw while transmitting.
    pub fn tx_power_draw(&self) -> Watts {
        self.power.total()
    }

    /// Bits on the air per packet (PHY overhead included).
    pub fn packet_air_bits(&self) -> usize {
        mmx_phy::packet::Packet::air_bits(self.payload_bytes)
    }

    /// Time between packet starts to sustain the demand.
    pub fn packet_interval(&self) -> Seconds {
        Seconds::new(self.payload_bytes as f64 * 8.0 / self.demand.bps())
    }

    /// On-air time of one packet at the granted PHY rate.
    pub fn packet_airtime(&self, phy_rate: BitRate) -> Seconds {
        phy_rate.time_for_bits(self.packet_air_bits() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmx_channel::Vec2;
    use mmx_units::Degrees;

    fn pose() -> Pose {
        Pose::new(Vec2::new(1.0, 2.0), Degrees::new(0.0))
    }

    #[test]
    fn demand_capped_at_switch_limit() {
        let n = NodeStation::new(1, pose(), BitRate::from_mbps(400.0));
        assert!((n.demand.mbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn hd_camera_profile() {
        let n = NodeStation::hd_camera(2, pose());
        assert!((n.demand.mbps() - 10.0).abs() < 1e-9);
        assert_eq!(n.payload_bytes, 1400);
    }

    #[test]
    fn packet_interval_sustains_demand() {
        let n = NodeStation::hd_camera(1, pose());
        let per_packet_bits = n.payload_bytes as f64 * 8.0;
        let rate = per_packet_bits / n.packet_interval().value();
        assert!((rate - 10e6).abs() < 1.0);
    }

    #[test]
    fn airtime_shorter_than_interval_at_full_phy_rate() {
        // A 10 Mbps camera on a 25 MHz channel (~20 Mbps PHY) spends
        // about half its time on the air.
        let n = NodeStation::hd_camera(1, pose());
        let airtime = n.packet_airtime(BitRate::from_mbps(20.0));
        assert!(airtime < n.packet_interval());
    }

    #[test]
    fn activity_window() {
        let n = NodeStation::hd_camera(1, pose())
            .with_activity(Seconds::new(1.0), Some(Seconds::new(2.0)));
        assert!(!n.is_active(Seconds::new(0.5)));
        assert!(n.is_active(Seconds::new(1.5)));
        assert!(!n.is_active(Seconds::new(2.5)));
        let always = NodeStation::hd_camera(2, pose());
        assert!(always.is_active(Seconds::new(1e6)));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn inverted_window_rejected() {
        let _ = NodeStation::hd_camera(1, pose())
            .with_activity(Seconds::new(2.0), Some(Seconds::new(1.0)));
    }

    #[test]
    fn node_draws_1_1w() {
        let n = NodeStation::new(1, pose(), BitRate::from_mbps(10.0));
        assert!((n.tx_power_draw().value() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn air_bits_include_phy_overhead() {
        let n = NodeStation::hd_camera(1, pose());
        assert!(n.packet_air_bits() > 1400 * 8);
    }
}
