//! The access-point station model.

use mmx_antenna::element::Element;
use mmx_antenna::tma::Tma;
use mmx_channel::response::Pose;
use mmx_rf::frontend::ApFrontEnd;
use mmx_units::{Db, Hertz};

/// The mmX AP: receive chain plus either a single dipole (the prototype,
/// §8.2) or a TMA (the multi-node SDM extension, §7(b)).
#[derive(Debug, Clone)]
pub struct ApStation {
    /// Position and facing in the room.
    pub pose: Pose,
    front_end: ApFrontEnd,
    tma: Option<Tma>,
}

impl ApStation {
    /// The prototype AP: dipole only.
    pub fn dipole(pose: Pose) -> Self {
        ApStation {
            pose,
            front_end: ApFrontEnd::standard(),
            tma: None,
        }
    }

    /// An SDM-capable AP with an `n`-element TMA switching at
    /// `switch_freq`.
    pub fn with_tma(pose: Pose, n: usize, switch_freq: Hertz) -> Self {
        ApStation {
            pose,
            front_end: ApFrontEnd::standard(),
            tma: Some(Tma::new(n, Hertz::from_ghz(24.0), switch_freq)),
        }
    }

    /// The receive chain.
    pub fn front_end(&self) -> &ApFrontEnd {
        &self.front_end
    }

    /// The TMA, when fitted.
    pub fn tma(&self) -> Option<&Tma> {
        self.tma.as_ref()
    }

    /// The antenna element used for single-node links.
    pub fn element(&self) -> Element {
        Element::ApDipole
    }

    /// Cascaded receiver noise figure.
    pub fn noise_figure(&self) -> Db {
        self.front_end.noise_figure()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmx_channel::Vec2;
    use mmx_units::Degrees;

    fn pose() -> Pose {
        Pose::new(Vec2::new(5.5, 2.0), Degrees::new(180.0))
    }

    #[test]
    fn dipole_ap_has_no_tma() {
        let ap = ApStation::dipole(pose());
        assert!(ap.tma().is_none());
        assert_eq!(ap.element(), Element::ApDipole);
    }

    #[test]
    fn tma_ap_exposes_array() {
        let ap = ApStation::with_tma(pose(), 8, Hertz::from_mhz(1.0));
        assert_eq!(ap.tma().expect("tma").len(), 8);
    }

    #[test]
    fn noise_figure_matches_cascade() {
        let ap = ApStation::dipole(pose());
        let nf = ap.noise_figure().value();
        assert!(nf > 2.0 && nf < 3.0, "NF = {nf}");
    }
}
