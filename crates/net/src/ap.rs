//! The access-point station model.

use mmx_antenna::element::Element;
use mmx_antenna::tma::Tma;
use mmx_channel::response::Pose;
use mmx_rf::frontend::ApFrontEnd;
use mmx_units::{Db, Hertz};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an AP on the coordination plane.
///
/// Mirrors [`NodeId`](crate::control::NodeId): a dense `u16` index
/// assigned at deployment time, carried in inter-AP messages
/// ([`crate::multi_ap::ApMsg`]), handoff FSM states
/// ([`crate::link::LinkState::Handoff`]), traces and reports instead of
/// bare `usize` indices. It lives here rather than in `mmx-core`
/// because `mmx-core` sits *above* `mmx-net` in the crate graph;
/// `mmx-core`'s prelude re-exports it.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ApId(pub u16);

impl ApId {
    /// The id as a dense array index (APs are numbered 0..N at
    /// deployment).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ApId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ap{}", self.0)
    }
}

/// The mmX AP: receive chain plus either a single dipole (the prototype,
/// §8.2) or a TMA (the multi-node SDM extension, §7(b)).
#[derive(Debug, Clone)]
pub struct ApStation {
    /// Position and facing in the room.
    pub pose: Pose,
    id: ApId,
    front_end: ApFrontEnd,
    tma: Option<Tma>,
}

impl ApStation {
    /// The prototype AP: dipole only.
    pub fn dipole(pose: Pose) -> Self {
        ApStation {
            pose,
            id: ApId::default(),
            front_end: ApFrontEnd::standard(),
            tma: None,
        }
    }

    /// An SDM-capable AP with an `n`-element TMA switching at
    /// `switch_freq`.
    pub fn with_tma(pose: Pose, n: usize, switch_freq: Hertz) -> Self {
        ApStation {
            pose,
            id: ApId::default(),
            front_end: ApFrontEnd::standard(),
            tma: Some(Tma::new(n, Hertz::from_ghz(24.0), switch_freq)),
        }
    }

    /// Tags the AP with its deployment id (builder style; single-AP
    /// simulations keep the default `ap0`).
    pub fn with_id(mut self, id: ApId) -> Self {
        self.id = id;
        self
    }

    /// The AP's deployment id.
    pub fn id(&self) -> ApId {
        self.id
    }

    /// The receive chain.
    pub fn front_end(&self) -> &ApFrontEnd {
        &self.front_end
    }

    /// The TMA, when fitted.
    pub fn tma(&self) -> Option<&Tma> {
        self.tma.as_ref()
    }

    /// The antenna element used for single-node links.
    pub fn element(&self) -> Element {
        Element::ApDipole
    }

    /// Cascaded receiver noise figure.
    pub fn noise_figure(&self) -> Db {
        self.front_end.noise_figure()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmx_channel::Vec2;
    use mmx_units::Degrees;

    fn pose() -> Pose {
        Pose::new(Vec2::new(5.5, 2.0), Degrees::new(180.0))
    }

    #[test]
    fn dipole_ap_has_no_tma() {
        let ap = ApStation::dipole(pose());
        assert!(ap.tma().is_none());
        assert_eq!(ap.element(), Element::ApDipole);
    }

    #[test]
    fn tma_ap_exposes_array() {
        let ap = ApStation::with_tma(pose(), 8, Hertz::from_mhz(1.0));
        assert_eq!(ap.tma().expect("tma").len(), 8);
    }

    #[test]
    fn ap_id_defaults_to_zero_and_is_settable() {
        let ap = ApStation::dipole(pose());
        assert_eq!(ap.id(), ApId(0));
        let ap = ApStation::with_tma(pose(), 8, Hertz::from_mhz(1.0)).with_id(ApId(3));
        assert_eq!(ap.id().index(), 3);
        assert_eq!(format!("{}", ap.id()), "ap3");
    }

    #[test]
    fn ap_ids_order_like_their_indices() {
        assert!(ApId(1) < ApId(2));
        assert_eq!(ApId::default(), ApId(0));
    }

    #[test]
    fn noise_figure_matches_cascade() {
        let ap = ApStation::dipole(pose());
        let nf = ap.noise_figure().value();
        assert!(nf > 2.0 && nf < 3.0, "NF = {nf}");
    }
}
