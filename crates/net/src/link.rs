//! The node-side control-link state machine and retransmit backoff.
//!
//! A node's relationship to the AP moves through six states:
//!
//! ```text
//! Idle ──join──▶ Joining ──grant──▶ Granted ──K low-SINR pkts──▶ Outage
//!   ▲                                  │  ▲                        │
//!   └────────── crash ─────────────────┘  └──grant── Rejoining ◀───┘
//!                                      │  ▲             ▲ (also after
//!                            better AP │  │ transfer    └─reject─
//!                                      ▼  │ grant          AP restart)
//!                                   Handoff { from, to }
//! ```
//!
//! The machine is pure bookkeeping — it decides *what* the node should
//! do (send a join, start streaming, back off); the simulator decides
//! *when* by scheduling the resulting control messages through the
//! fault injector. Grants carry an epoch number; a grant older than the
//! newest one the node has seen is stale (reordered or duplicated on
//! the control plane) and is discarded, so FDM re-packing can never
//! strand the node on an outdated center frequency.
//!
//! `Handoff { from, to }` is the multi-AP roaming state
//! (`mmx_net::multi_ap`): per-packet SINR margin hysteresis asks the
//! coordinator to move the node's grant to a better AP, and the node
//! keeps streaming to `from` — make-before-break — until a
//! *fresh-epoch* transfer grant from `to` arrives. The monotonic epoch
//! watermark is what makes the break safe: at most one AP's grant is
//! current, so a packet can never be counted delivered at two APs.

use crate::ap::ApId;
use mmx_units::Seconds;
use serde::{Deserialize, Serialize};

/// The control-link states of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkState {
    /// Not participating (before `active_from`, or crashed).
    Idle,
    /// First admission attempt in flight.
    Joining,
    /// Holding a live lease; streaming.
    Granted,
    /// Streaming but undecodable at the AP; FSK-only fallback active,
    /// re-admission requested.
    Outage,
    /// Lost the lease (crash reboot, AP restart, or outage) and
    /// re-requesting admission.
    Rejoining,
    /// Roaming: still streaming to `from` while the coordinator moves
    /// the grant to `to` (make-before-break, `mmx_net::multi_ap`).
    Handoff {
        /// The serving AP the node keeps streaming to meanwhile.
        from: ApId,
        /// The AP the grant is being transferred to.
        to: ApId,
    },
}

/// Exponential backoff with deterministic jitter for control
/// retransmissions.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Backoff {
    /// First retransmit timeout.
    pub base: Seconds,
    /// Cap on the doubled timeout.
    pub max: Seconds,
    /// Jitter fraction: the delay is scaled by `1 + jitter_frac * u`
    /// with `u ∈ [0, 1)` supplied by the caller's seeded RNG.
    pub jitter_frac: f64,
}

impl Backoff {
    /// The standard control-plane policy: 60 ms doubling to 1 s with up
    /// to 50% jitter (a BLE connection interval is ~30 ms, so the first
    /// retry waits two of them).
    pub fn standard() -> Self {
        Backoff {
            base: Seconds::from_millis(60.0),
            max: Seconds::new(1.0),
            jitter_frac: 0.5,
        }
    }

    /// The retransmit delay after `attempt` failures (attempt 0 = first
    /// retry), jittered by `u ∈ [0, 1)`.
    pub fn delay(&self, attempt: u32, u: f64) -> Seconds {
        debug_assert!((0.0..=1.0).contains(&u), "jitter draw out of range");
        let doubled = self.base * 2f64.powi(attempt.min(16) as i32);
        let capped = doubled.min(self.max);
        capped * (1.0 + self.jitter_frac * u.clamp(0.0, 1.0))
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::standard()
    }
}

/// The per-node control-link bookkeeping the simulator carries.
#[derive(Debug, Clone)]
pub struct NodeLink {
    state: LinkState,
    /// Newest grant epoch accepted; older grants are stale.
    epoch_seen: u64,
    /// Consecutive failed join attempts in the current (re)join cycle.
    attempt: u32,
    /// Center frequency of the live grant, Hz (0 until first grant).
    center_hz: f64,
    /// When the current join/outage episode began (for time-to-recover).
    episode_start: Option<Seconds>,
    /// Consecutive packets below the decode threshold.
    low_sinr_run: u32,
    /// Stale (reordered or duplicated) grants discarded so far.
    stale_discarded: u64,
    /// The AP currently serving this node (always `ap0` under one AP).
    serving: ApId,
    /// Completed handoffs.
    handoffs: u64,
}

/// What the state machine asks the simulator to do after an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkAction {
    /// Nothing to do.
    None,
    /// Send (or resend) a `JoinRequest`.
    SendJoin,
    /// Send a `GrantAck` and begin/resume streaming.
    AckGrant,
    /// Ask the coordinator to transfer the grant to a better AP
    /// (`mmx_net::multi_ap`).
    SendTransfer,
}

impl NodeLink {
    /// A fresh link in [`LinkState::Idle`].
    pub fn new() -> Self {
        NodeLink {
            state: LinkState::Idle,
            epoch_seen: 0,
            attempt: 0,
            center_hz: 0.0,
            episode_start: None,
            low_sinr_run: 0,
            stale_discarded: 0,
            serving: ApId::default(),
            handoffs: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> LinkState {
        self.state
    }

    /// The newest grant epoch accepted.
    pub fn epoch_seen(&self) -> u64 {
        self.epoch_seen
    }

    /// Consecutive failed attempts in this join cycle.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Center frequency of the live grant, Hz.
    pub fn center_hz(&self) -> f64 {
        self.center_hz
    }

    /// Stale grants this node has discarded.
    pub fn stale_discarded(&self) -> u64 {
        self.stale_discarded
    }

    /// The AP currently serving this node.
    pub fn serving(&self) -> ApId {
        self.serving
    }

    /// Completed grant transfers.
    pub fn handoffs(&self) -> u64 {
        self.handoffs
    }

    /// Pins the serving AP at initial association (before the first
    /// handoff; the transfer path updates it from then on).
    pub fn set_serving(&mut self, ap: ApId) {
        self.serving = ap;
    }

    /// True while the node should be transmitting data packets
    /// (Granted, Outage on the FSK fallback, or mid-handoff — the
    /// make-before-break window keeps the uplink on air).
    pub fn is_streaming(&self) -> bool {
        matches!(
            self.state,
            LinkState::Granted | LinkState::Outage | LinkState::Handoff { .. }
        )
    }

    /// The node wakes up (at `active_from` or on reboot) and starts the
    /// admission handshake.
    pub fn start_join(&mut self, now: Seconds) -> LinkAction {
        self.state = if self.epoch_seen == 0 {
            LinkState::Joining
        } else {
            LinkState::Rejoining
        };
        self.attempt = 0;
        self.low_sinr_run = 0;
        if self.episode_start.is_none() {
            self.episode_start = Some(now);
        }
        LinkAction::SendJoin
    }

    /// A retransmit timer for join attempt `attempt` fired. Returns the
    /// action (resend) only when the timer is still current — a stale
    /// timer from a superseded attempt is ignored.
    pub fn retry_join(&mut self, attempt: u32) -> LinkAction {
        if !matches!(
            self.state,
            LinkState::Joining | LinkState::Rejoining | LinkState::Outage
        ) || attempt != self.attempt
        {
            return LinkAction::None;
        }
        self.attempt += 1;
        LinkAction::SendJoin
    }

    /// A `Grant` with `epoch` for `center_hz` arrived. Stale epochs are
    /// discarded; a fresh one retunes the node and — when it closes a
    /// join episode — moves it to Granted, reporting the elapsed time.
    /// A node in Outage retunes and acks but stays in the FSK fallback:
    /// its problem is the mmWave channel, not the lease, and it returns
    /// to Granted when a packet decodes again
    /// ([`Self::on_packet_sinr`]).
    pub fn on_grant(
        &mut self,
        epoch: u64,
        center_hz: f64,
        now: Seconds,
    ) -> (LinkAction, Option<Seconds>) {
        if epoch <= self.epoch_seen {
            self.stale_discarded += 1;
            return (LinkAction::None, None); // stale or duplicate
        }
        self.epoch_seen = epoch;
        self.center_hz = center_hz;
        match self.state {
            // Grant for a crashed node (it raced the lease expiry);
            // accept the epoch so the eventual rejoin discards
            // anything older, but do not start streaming.
            LinkState::Idle => (LinkAction::None, None),
            LinkState::Joining | LinkState::Rejoining => {
                let recovered = self.episode_start.take().map(|t0| now - t0);
                self.state = LinkState::Granted;
                self.attempt = 0;
                self.low_sinr_run = 0;
                (LinkAction::AckGrant, recovered)
            }
            // Re-pack move while streaming: retune and confirm.
            LinkState::Granted => {
                self.attempt = 0;
                (LinkAction::AckGrant, None)
            }
            // Stay in the fallback until the channel itself heals.
            LinkState::Outage => (LinkAction::AckGrant, None),
            // A fresh grant from the *serving* AP supersedes an
            // in-flight transfer: abort the handoff and stay home.
            LinkState::Handoff { .. } => {
                self.state = LinkState::Granted;
                self.attempt = 0;
                self.episode_start = None;
                (LinkAction::AckGrant, None)
            }
        }
    }

    /// A `Reject` arrived (band exhausted, or the AP no longer knows
    /// this node after a restart/lease expiry). A granted node falls
    /// back to Rejoining; a joining node keeps backing off.
    pub fn on_reject(&mut self, now: Seconds) -> LinkAction {
        match self.state {
            LinkState::Granted | LinkState::Outage => {
                self.state = LinkState::Rejoining;
                self.attempt = 0;
                self.episode_start = Some(now);
                LinkAction::SendJoin
            }
            LinkState::Joining | LinkState::Rejoining => LinkAction::None,
            LinkState::Idle => LinkAction::None,
            // The *target* AP denied the transfer (admission full):
            // abort the handoff and keep the current grant — the node
            // never stopped streaming to `from`.
            LinkState::Handoff { .. } => {
                self.abort_handoff();
                LinkAction::None
            }
        }
    }

    /// Starts a make-before-break handoff toward `to`. Only a cleanly
    /// granted node roams (an outage wants re-admission, not a move);
    /// the returned action asks the simulator to send an epoch-stamped
    /// `ApMsg::Transfer` through the serving AP.
    pub fn begin_handoff(&mut self, to: ApId, now: Seconds) -> LinkAction {
        match self.state {
            LinkState::Granted if to != self.serving => {
                self.state = LinkState::Handoff {
                    from: self.serving,
                    to,
                };
                self.attempt = 0;
                self.episode_start = Some(now);
                LinkAction::SendTransfer
            }
            _ => LinkAction::None,
        }
    }

    /// A transfer retransmit timer for attempt `attempt` fired. Stale
    /// timers (superseded attempt, or the handoff already resolved) are
    /// ignored, mirroring [`Self::retry_join`].
    pub fn retry_transfer(&mut self, attempt: u32) -> LinkAction {
        if !matches!(self.state, LinkState::Handoff { .. }) || attempt != self.attempt {
            return LinkAction::None;
        }
        self.attempt += 1;
        LinkAction::SendTransfer
    }

    /// A transfer grant from AP `to` with `epoch` for `center_hz`
    /// arrived. Stale epochs are discarded (the monotonic watermark is
    /// what guarantees at most one AP holds a current grant — the
    /// zero-duplicate-delivery invariant). A fresh epoch completes the
    /// handoff: the node retunes, switches its serving AP and reports
    /// how long the transfer took. A fresh transfer grant arriving
    /// *outside* a matching handoff (the node aborted meanwhile) only
    /// advances the watermark, exactly like
    /// [`Self::on_grant`] for a crashed node.
    pub fn on_transfer_grant(
        &mut self,
        epoch: u64,
        center_hz: f64,
        to: ApId,
        now: Seconds,
    ) -> (LinkAction, Option<Seconds>) {
        if epoch <= self.epoch_seen {
            self.stale_discarded += 1;
            return (LinkAction::None, None);
        }
        self.epoch_seen = epoch;
        match self.state {
            LinkState::Handoff { to: expected, .. } if expected == to => {
                self.center_hz = center_hz;
                self.serving = to;
                self.state = LinkState::Granted;
                self.attempt = 0;
                self.low_sinr_run = 0;
                self.handoffs += 1;
                let took = self.episode_start.take().map(|t0| now - t0);
                (LinkAction::AckGrant, took)
            }
            _ => (LinkAction::None, None),
        }
    }

    /// Gives up on an in-flight handoff (transfer retries exhausted):
    /// back to Granted on the unchanged serving AP. The break never
    /// happened, so nothing else to undo. No-op outside Handoff.
    pub fn abort_handoff(&mut self) {
        if matches!(self.state, LinkState::Handoff { .. }) {
            self.state = LinkState::Granted;
            self.attempt = 0;
            self.episode_start = None;
        }
    }

    /// The node crashed: all link state except the epoch watermark is
    /// lost.
    pub fn on_crash(&mut self) {
        self.state = LinkState::Idle;
        self.attempt = 0;
        self.low_sinr_run = 0;
        self.episode_start = None;
        self.center_hz = 0.0;
    }

    /// Records one data packet's SINR against the decode threshold.
    /// After `window` consecutive failures a granted node enters Outage
    /// (FSK-only fallback, §6.2) and asks for re-admission; the first
    /// decodable packet afterwards closes the outage, reporting its
    /// duration.
    pub fn on_packet_sinr(
        &mut self,
        decodable: bool,
        window: u32,
        now: Seconds,
    ) -> (LinkAction, Option<Seconds>) {
        if decodable {
            self.low_sinr_run = 0;
            if self.state == LinkState::Outage {
                let recovered = self.episode_start.take().map(|t0| now - t0);
                self.state = LinkState::Granted;
                self.attempt = 0;
                return (LinkAction::None, recovered);
            }
            return (LinkAction::None, None);
        }
        self.low_sinr_run += 1;
        if self.state == LinkState::Granted && self.low_sinr_run >= window {
            self.state = LinkState::Outage;
            self.attempt = 0;
            self.episode_start = Some(now);
            return (LinkAction::SendJoin, None);
        }
        (LinkAction::None, None)
    }
}

impl Default for NodeLink {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_idle_joining_granted() {
        let mut l = NodeLink::new();
        assert_eq!(l.state(), LinkState::Idle);
        assert_eq!(l.start_join(Seconds::ZERO), LinkAction::SendJoin);
        assert_eq!(l.state(), LinkState::Joining);
        let (act, rec) = l.on_grant(1, 24.05e9, Seconds::from_millis(30.0));
        assert_eq!(act, LinkAction::AckGrant);
        assert_eq!(rec, Some(Seconds::from_millis(30.0)));
        assert_eq!(l.state(), LinkState::Granted);
        assert!(l.is_streaming());
        assert_eq!(l.center_hz(), 24.05e9);
    }

    #[test]
    fn stale_grant_is_discarded() {
        let mut l = NodeLink::new();
        l.start_join(Seconds::ZERO);
        l.on_grant(5, 24.10e9, Seconds::new(0.1));
        // A reordered epoch-3 grant must not move the center.
        let (act, _) = l.on_grant(3, 24.00e9, Seconds::new(0.2));
        assert_eq!(act, LinkAction::None);
        assert_eq!(l.center_hz(), 24.10e9);
        // A duplicate of the current epoch is also ignored.
        let (act, _) = l.on_grant(5, 24.20e9, Seconds::new(0.3));
        assert_eq!(act, LinkAction::None);
        assert_eq!(l.center_hz(), 24.10e9);
        assert_eq!(l.stale_discarded(), 2);
        // A genuinely newer grant retunes a granted node in place.
        let (act, rec) = l.on_grant(6, 24.15e9, Seconds::new(0.4));
        assert_eq!(act, LinkAction::AckGrant);
        assert!(rec.is_none(), "a re-pack move is not a recovery");
        assert_eq!(l.center_hz(), 24.15e9);
        assert_eq!(l.state(), LinkState::Granted);
    }

    #[test]
    fn outage_after_k_bad_packets_then_recovery() {
        let mut l = NodeLink::new();
        l.start_join(Seconds::ZERO);
        l.on_grant(1, 24.05e9, Seconds::ZERO);
        for k in 0..7 {
            assert_eq!(
                l.on_packet_sinr(false, 8, Seconds::new(0.1 * k as f64)),
                (LinkAction::None, None)
            );
        }
        assert_eq!(
            l.on_packet_sinr(false, 8, Seconds::new(1.0)),
            (LinkAction::SendJoin, None)
        );
        assert_eq!(l.state(), LinkState::Outage);
        assert!(l.is_streaming(), "outage keeps the FSK fallback on air");
        // A re-grant retunes and acks but does not end the outage — the
        // channel is still undecodable.
        let (act, rec) = l.on_grant(2, 24.06e9, Seconds::new(1.2));
        assert_eq!(act, LinkAction::AckGrant);
        assert_eq!(rec, None);
        assert_eq!(l.state(), LinkState::Outage);
        // The first decodable packet closes the episode.
        let (act, rec) = l.on_packet_sinr(true, 8, Seconds::new(1.5));
        assert_eq!(act, LinkAction::None);
        assert_eq!(rec, Some(Seconds::new(0.5)));
        assert_eq!(l.state(), LinkState::Granted);
    }

    #[test]
    fn good_packet_resets_the_window() {
        let mut l = NodeLink::new();
        l.start_join(Seconds::ZERO);
        l.on_grant(1, 24.05e9, Seconds::ZERO);
        for _ in 0..7 {
            l.on_packet_sinr(false, 8, Seconds::ZERO);
        }
        l.on_packet_sinr(true, 8, Seconds::ZERO);
        for _ in 0..7 {
            assert_eq!(
                l.on_packet_sinr(false, 8, Seconds::ZERO),
                (LinkAction::None, None)
            );
        }
        assert_eq!(l.state(), LinkState::Granted);
    }

    #[test]
    fn crash_and_rejoin() {
        let mut l = NodeLink::new();
        l.start_join(Seconds::ZERO);
        l.on_grant(4, 24.05e9, Seconds::ZERO);
        l.on_crash();
        assert_eq!(l.state(), LinkState::Idle);
        assert!(!l.is_streaming());
        assert_eq!(l.epoch_seen(), 4, "epoch watermark survives the crash");
        assert_eq!(l.start_join(Seconds::new(2.0)), LinkAction::SendJoin);
        assert_eq!(l.state(), LinkState::Rejoining);
        let (act, rec) = l.on_grant(9, 24.07e9, Seconds::new(2.2));
        assert_eq!(act, LinkAction::AckGrant);
        assert!((rec.unwrap().value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn reject_while_granted_triggers_rejoin() {
        let mut l = NodeLink::new();
        l.start_join(Seconds::ZERO);
        l.on_grant(1, 24.05e9, Seconds::ZERO);
        assert_eq!(l.on_reject(Seconds::new(1.0)), LinkAction::SendJoin);
        assert_eq!(l.state(), LinkState::Rejoining);
        // While already rejoining, further rejects do not spam joins —
        // the backoff timer owns retransmission.
        assert_eq!(l.on_reject(Seconds::new(1.1)), LinkAction::None);
    }

    #[test]
    fn stale_retry_timers_are_ignored() {
        let mut l = NodeLink::new();
        l.start_join(Seconds::ZERO);
        assert_eq!(l.retry_join(0), LinkAction::SendJoin);
        assert_eq!(l.attempt(), 1);
        // A leftover timer for attempt 0 fires late: ignored.
        assert_eq!(l.retry_join(0), LinkAction::None);
        assert_eq!(l.retry_join(1), LinkAction::SendJoin);
        // Once granted, all pending timers are stale.
        l.on_grant(1, 24.05e9, Seconds::ZERO);
        assert_eq!(l.retry_join(2), LinkAction::None);
    }

    #[test]
    fn backoff_doubles_caps_and_jitters() {
        let b = Backoff::standard();
        assert_eq!(b.delay(0, 0.0), Seconds::from_millis(60.0));
        assert_eq!(b.delay(1, 0.0), Seconds::from_millis(120.0));
        assert_eq!(b.delay(2, 0.0), Seconds::from_millis(240.0));
        // Capped at max.
        assert_eq!(b.delay(10, 0.0), Seconds::new(1.0));
        // Huge attempt counts must not overflow the exponent.
        assert_eq!(b.delay(u32::MAX, 0.0), Seconds::new(1.0));
        // Jitter stretches by at most jitter_frac.
        let jittered = b.delay(0, 0.999);
        assert!(jittered > Seconds::from_millis(60.0));
        assert!(jittered < Seconds::from_millis(90.1));
        // Deterministic: same inputs, same delay.
        assert_eq!(b.delay(3, 0.5), b.delay(3, 0.5));
    }

    fn granted_link(serving: ApId) -> NodeLink {
        let mut l = NodeLink::new();
        l.set_serving(serving);
        l.start_join(Seconds::ZERO);
        l.on_grant(1, 24.05e9, Seconds::ZERO);
        l
    }

    #[test]
    fn handoff_happy_path_transfers_the_grant() {
        let mut l = granted_link(ApId(0));
        assert_eq!(
            l.begin_handoff(ApId(1), Seconds::new(1.0)),
            LinkAction::SendTransfer
        );
        assert_eq!(
            l.state(),
            LinkState::Handoff {
                from: ApId(0),
                to: ApId(1)
            }
        );
        assert!(l.is_streaming(), "make-before-break keeps the uplink up");
        assert_eq!(l.serving(), ApId(0), "still served by `from` mid-handoff");
        let (act, took) = l.on_transfer_grant(2, 24.08e9, ApId(1), Seconds::new(1.03));
        assert_eq!(act, LinkAction::AckGrant);
        assert!((took.unwrap().value() - 0.03).abs() < 1e-12);
        assert_eq!(l.state(), LinkState::Granted);
        assert_eq!(l.serving(), ApId(1));
        assert_eq!(l.center_hz(), 24.08e9);
        assert_eq!(l.handoffs(), 1);
    }

    #[test]
    fn stale_transfer_grant_is_discarded() {
        let mut l = granted_link(ApId(0));
        l.begin_handoff(ApId(1), Seconds::new(1.0));
        // A duplicate of the original grant epoch: stale.
        let (act, _) = l.on_transfer_grant(1, 24.08e9, ApId(1), Seconds::new(1.1));
        assert_eq!(act, LinkAction::None);
        assert_eq!(l.serving(), ApId(0));
        assert_eq!(l.stale_discarded(), 1);
        // The real (fresh) grant still completes.
        let (act, _) = l.on_transfer_grant(2, 24.08e9, ApId(1), Seconds::new(1.2));
        assert_eq!(act, LinkAction::AckGrant);
        assert_eq!(l.serving(), ApId(1));
    }

    #[test]
    fn handoff_to_serving_ap_is_refused() {
        let mut l = granted_link(ApId(2));
        assert_eq!(l.begin_handoff(ApId(2), Seconds::ZERO), LinkAction::None);
        assert_eq!(l.state(), LinkState::Granted);
    }

    #[test]
    fn transfer_retries_mirror_join_retries() {
        let mut l = granted_link(ApId(0));
        l.begin_handoff(ApId(1), Seconds::ZERO);
        assert_eq!(l.retry_transfer(0), LinkAction::SendTransfer);
        assert_eq!(l.retry_transfer(0), LinkAction::None, "stale timer");
        assert_eq!(l.retry_transfer(1), LinkAction::SendTransfer);
        l.abort_handoff();
        assert_eq!(l.state(), LinkState::Granted);
        assert_eq!(l.serving(), ApId(0), "abort keeps the old AP");
        assert_eq!(l.retry_transfer(2), LinkAction::None);
        assert_eq!(l.handoffs(), 0);
    }

    #[test]
    fn late_transfer_grant_after_abort_only_moves_the_watermark() {
        let mut l = granted_link(ApId(0));
        l.begin_handoff(ApId(1), Seconds::ZERO);
        l.abort_handoff();
        let (act, took) = l.on_transfer_grant(5, 24.09e9, ApId(1), Seconds::new(2.0));
        assert_eq!(act, LinkAction::None);
        assert!(took.is_none());
        assert_eq!(l.serving(), ApId(0));
        assert_eq!(l.epoch_seen(), 5, "watermark advances so older grants die");
    }

    #[test]
    fn serving_ap_grant_aborts_the_handoff() {
        let mut l = granted_link(ApId(0));
        l.begin_handoff(ApId(1), Seconds::ZERO);
        // A re-pack grant from the serving AP supersedes the transfer.
        let (act, _) = l.on_grant(7, 24.11e9, Seconds::new(0.1));
        assert_eq!(act, LinkAction::AckGrant);
        assert_eq!(l.state(), LinkState::Granted);
        assert_eq!(l.serving(), ApId(0));
    }

    #[test]
    fn reject_mid_handoff_keeps_the_old_grant() {
        let mut l = granted_link(ApId(0));
        l.begin_handoff(ApId(1), Seconds::ZERO);
        assert_eq!(l.on_reject(Seconds::new(0.1)), LinkAction::None);
        assert_eq!(l.state(), LinkState::Granted);
        assert_eq!(l.serving(), ApId(0));
        assert!(l.is_streaming());
    }

    #[test]
    fn outage_cannot_start_a_handoff_and_handoff_cannot_outage() {
        let mut l = granted_link(ApId(0));
        for _ in 0..8 {
            l.on_packet_sinr(false, 8, Seconds::ZERO);
        }
        assert_eq!(l.state(), LinkState::Outage);
        assert_eq!(l.begin_handoff(ApId(1), Seconds::ZERO), LinkAction::None);
        // And from a fresh handoff, bad packets do not demote to Outage.
        let mut l = granted_link(ApId(0));
        l.begin_handoff(ApId(1), Seconds::ZERO);
        for _ in 0..20 {
            l.on_packet_sinr(false, 8, Seconds::ZERO);
        }
        assert!(matches!(l.state(), LinkState::Handoff { .. }));
    }

    #[test]
    fn grant_while_idle_updates_epoch_only() {
        // A re-pack grant addressed to a node that crashed in between.
        let mut l = NodeLink::new();
        l.start_join(Seconds::ZERO);
        l.on_grant(1, 24.05e9, Seconds::ZERO);
        l.on_crash();
        let (act, rec) = l.on_grant(2, 24.09e9, Seconds::new(1.0));
        assert_eq!(act, LinkAction::None);
        assert!(rec.is_none());
        assert_eq!(l.state(), LinkState::Idle);
        assert_eq!(l.epoch_seen(), 2);
        assert!(!l.is_streaming());
    }
}
