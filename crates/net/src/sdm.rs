//! Spatial-division multiplexing via the AP's time-modulated array.
//!
//! §7(b): "In scenarios where the total demanded bandwidth by the nodes is
//! more than the available spectrum, mmX uses SDM to support all nodes
//! simultaneously." The TMA hashes arrival directions into harmonic
//! channels; nodes landing on *different* harmonics can share a frequency
//! channel, while nodes in the same harmonic beam must stay on different
//! frequencies.

use mmx_antenna::tma::Tma;
use mmx_units::Degrees;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One node's spatial-frequency slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdmSlot {
    /// Index of the shared frequency channel.
    pub channel: usize,
    /// TMA harmonic carrying this node.
    pub harmonic: i32,
}

/// Why SDM scheduling failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdmError {
    /// More nodes share one TMA beam than there are frequency channels:
    /// even spatial reuse cannot separate them.
    NotEnoughResources {
        /// The overloaded harmonic.
        harmonic: i32,
        /// Number of nodes in that beam.
        nodes: usize,
    },
}

/// The SDM scheduler: direction → harmonic → (channel, harmonic) slots.
#[derive(Debug, Clone)]
pub struct SdmScheduler {
    tma: Tma,
}

impl SdmScheduler {
    /// Creates a scheduler over an AP TMA.
    pub fn new(tma: Tma) -> Self {
        SdmScheduler { tma }
    }

    /// The TMA.
    pub fn tma(&self) -> &Tma {
        &self.tma
    }

    /// Schedules nodes with the given angles of arrival into `channels`
    /// frequency channels. Nodes in distinct harmonics reuse channels;
    /// nodes within one harmonic need distinct channels.
    ///
    /// Channel choice is greedy with a spatial heuristic: each node picks
    /// the free channel whose existing users sit in the *most distant*
    /// harmonic beams, so co-channel interferers land in each other's
    /// deep sidelobes rather than in adjacent beams.
    pub fn schedule(&self, aoa: &[Degrees], channels: usize) -> Result<Vec<SdmSlot>, SdmError> {
        assert!(channels >= 1, "need at least one channel");
        let harmonics = self.tma.assign_harmonics(aoa);
        // users[c] = harmonics already on channel c.
        let mut users: Vec<Vec<i32>> = vec![Vec::new(); channels];
        let mut per_harmonic: BTreeMap<i32, usize> = BTreeMap::new();
        let mut slots = Vec::with_capacity(aoa.len());
        for &m in &harmonics {
            let count = per_harmonic.entry(m).or_insert(0);
            if *count >= channels {
                return Err(SdmError::NotEnoughResources {
                    harmonic: m,
                    nodes: *count + 1,
                });
            }
            // Candidate channels: none of their users share harmonic m.
            // Score = distance (in harmonic index) to the nearest user;
            // an empty channel scores ∞.
            let mut best: Option<(usize, i32)> = None; // (channel, score)
            for (c, us) in users.iter().enumerate() {
                if us.contains(&m) {
                    continue;
                }
                let score = us.iter().map(|&u| (u - m).abs()).min().unwrap_or(i32::MAX);
                let better = match best {
                    None => true,
                    Some((_, s)) => score > s,
                };
                if better {
                    best = Some((c, score));
                }
            }
            let (channel, _) = best.expect("count < channels guarantees a free channel");
            users[channel].push(m);
            slots.push(SdmSlot {
                channel,
                harmonic: m,
            });
            *count += 1;
        }
        Ok(slots)
    }

    /// The spatial-reuse factor achieved by a schedule: nodes divided by
    /// the number of distinct frequency channels actually used.
    pub fn reuse_factor(slots: &[SdmSlot]) -> f64 {
        if slots.is_empty() {
            return 1.0;
        }
        let used: std::collections::BTreeSet<usize> = slots.iter().map(|s| s.channel).collect();
        slots.len() as f64 / used.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmx_units::Hertz;

    fn sched() -> SdmScheduler {
        SdmScheduler::new(Tma::new(8, Hertz::from_ghz(24.0), Hertz::from_mhz(1.0)))
    }

    #[test]
    fn spread_nodes_share_one_channel() {
        // Four nodes on four distinct TMA beams: all fit in channel 0.
        let s = sched();
        let aoa = [
            Degrees::new(0.0),
            Degrees::new(14.5),
            Degrees::new(-14.5),
            Degrees::new(30.0),
        ];
        let slots = s.schedule(&aoa, 1).expect("schedulable");
        assert!(slots.iter().all(|sl| sl.channel == 0));
        // All harmonics distinct.
        let hs: std::collections::BTreeSet<i32> = slots.iter().map(|sl| sl.harmonic).collect();
        assert_eq!(hs.len(), 4);
        assert_eq!(SdmScheduler::reuse_factor(&slots), 4.0);
    }

    #[test]
    fn colocated_nodes_need_distinct_channels() {
        let s = sched();
        let aoa = [Degrees::new(0.0), Degrees::new(1.0), Degrees::new(-1.0)];
        let slots = s.schedule(&aoa, 3).expect("schedulable");
        // Same beam → three different channels.
        let chans: std::collections::BTreeSet<usize> = slots.iter().map(|sl| sl.channel).collect();
        assert_eq!(chans.len(), 3);
    }

    #[test]
    fn overload_detected() {
        let s = sched();
        let aoa = [Degrees::new(0.0), Degrees::new(0.5), Degrees::new(-0.5)];
        match s.schedule(&aoa, 2) {
            Err(SdmError::NotEnoughResources { harmonic, nodes }) => {
                assert_eq!(harmonic, 0);
                assert_eq!(nodes, 3);
            }
            other => panic!("expected overload, got {other:?}"),
        }
    }

    #[test]
    fn twenty_nodes_fit_with_ten_channels() {
        // The Fig. 13 scale: 20 nodes, 10 × 25 MHz channels, 8 TMA beams.
        let s = sched();
        let aoa: Vec<Degrees> = (0..20)
            .map(|i| Degrees::new(-55.0 + i as f64 * (110.0 / 19.0)))
            .collect();
        let slots = s.schedule(&aoa, 10).expect("Fig. 13 must schedule");
        assert_eq!(slots.len(), 20);
        assert!(SdmScheduler::reuse_factor(&slots) > 1.5);
    }

    #[test]
    fn no_two_nodes_share_a_slot() {
        let s = sched();
        let aoa: Vec<Degrees> = (0..12)
            .map(|i| Degrees::new(-50.0 + 9.0 * i as f64))
            .collect();
        let slots = s.schedule(&aoa, 10).expect("schedulable");
        for i in 0..slots.len() {
            for j in i + 1..slots.len() {
                assert!(
                    slots[i] != slots[j],
                    "nodes {i} and {j} share slot {:?}",
                    slots[i]
                );
            }
        }
    }

    #[test]
    fn empty_input_schedules_trivially() {
        let s = sched();
        assert!(s.schedule(&[], 1).unwrap().is_empty());
        assert_eq!(SdmScheduler::reuse_factor(&[]), 1.0);
    }
}
