//! SINR computation for concurrent uplinks.
//!
//! A node's signal at the AP competes with (a) other nodes leaking across
//! TMA harmonics (the 20–30 dB-down copies of Eq. 4), (b) adjacent-channel
//! leakage of OOK spectra, and (c) thermal noise. Fig. 13's "SNR slightly
//! decreases" with node count is exactly these terms growing.
//!
//! Under multiple APs ([`crate::multi_ap`]) a fourth term appears:
//! co-channel uplinks *served by other APs* still arrive at this AP's
//! antenna and leak through its TMA sidelobes. [`sinr_at_ap`] accounts
//! for all four with global channel indices, so cross-AP interference
//! falls out of the same arithmetic as intra-AP interference.

use crate::sdm::SdmSlot;
use mmx_antenna::tma::HarmonicGain;
use mmx_units::{thermal_noise_dbm, Db, DbmPower, Degrees, Hertz};

/// Adjacent-channel leakage of an OOK transmitter into a channel `k`
/// steps away (guard bands included in the plan): −30 dB for the first
/// neighbor, −45 beyond, −60 floor.
pub fn adjacent_channel_leakage(channel_distance: usize) -> Db {
    Db::new(match channel_distance {
        0 => 0.0,
        1 => -30.0,
        2 => -45.0,
        _ => -60.0,
    })
}

/// One transmitting node as seen by the interference engine.
#[derive(Debug, Clone, Copy)]
pub struct Uplink {
    /// Receive power at the AP antenna *before* TMA processing (channel
    /// gain applied, AP element gain included).
    pub rx_power: DbmPower,
    /// Angle of arrival at the AP.
    pub aoa: Degrees,
    /// The node's SDM slot.
    pub slot: SdmSlot,
}

/// Computes the SINR of every uplink.
///
/// For node `i`, the wanted power is its `rx_power` plus the TMA gain of
/// its own harmonic toward its own direction; every other node `j`
/// contributes `rx_power_j` scaled by the TMA gain of *i's* harmonic
/// toward *j's* direction and the adjacent-channel isolation between
/// their channels.
///
/// Accepts anything implementing [`HarmonicGain`]: the analytic
/// [`mmx_antenna::tma::Tma`] for exact gains, or a
/// [`mmx_antenna::tma::TmaGainLut`] for O(1) lookups in hot loops.
pub fn sinr_all(
    tma: &impl HarmonicGain,
    uplinks: &[Uplink],
    bandwidth: Hertz,
    noise_figure: Db,
) -> Vec<Db> {
    let noise = thermal_noise_dbm(bandwidth, noise_figure);
    uplinks
        .iter()
        .map(|me| {
            // The TMA patterns are normalized to a single always-on
            // element; normalize per-link so the wanted harmonic gain at
            // the matched direction reads as ~0 dB and leakage as
            // negative.
            let wanted = me.rx_power + tma.harmonic_gain(me.slot.harmonic, me.aoa);
            let mut terms = vec![noise + tma.harmonic_gain(me.slot.harmonic, me.aoa).min(Db::ZERO)];
            for other in uplinks {
                if std::ptr::eq(me, other) {
                    continue;
                }
                let tma_gain = tma.harmonic_gain(me.slot.harmonic, other.aoa);
                let acl = adjacent_channel_leakage(me.slot.channel.abs_diff(other.slot.channel));
                terms.push(other.rx_power + tma_gain + acl);
            }
            wanted - DbmPower::power_sum(terms)
        })
        .collect()
}

/// SINR of node `me` at one AP of a multi-AP deployment.
///
/// Every node in the deployment — not just this AP's members —
/// contributes an interference term: `rx_of(j)` is node `j`'s arrival
/// power *at this AP's antenna*, `aoa_of(j)` its arrival angle there,
/// and `slots[j].channel` a **global** channel index from the shared
/// [`crate::multi_ap::HarmonicReusePlan`] grid. Co-channel reuse
/// between APs whose coverage cones the plan judged disjoint therefore
/// shows up here as an ordinary (weak, because distant and in the
/// sidelobes) interference term rather than as a special case — and a
/// bad reuse plan shows up as collapsed SINR instead of being silently
/// ignored.
///
/// The accessor-closure shape mirrors the single-AP engine's
/// `sinr_from`: the hot path substitutes a freshly traced power for the
/// transmitting node while reading everyone else from the frozen batch
/// snapshot, without building a per-packet `Vec`.
#[allow(clippy::too_many_arguments)]
pub fn sinr_at_ap(
    tma: &impl HarmonicGain,
    noise_figure: Db,
    bandwidth: Hertz,
    me: usize,
    nodes: usize,
    slots: &[SdmSlot],
    rx_of: impl Fn(usize) -> DbmPower,
    aoa_of: impl Fn(usize) -> Degrees,
) -> Db {
    let noise = thermal_noise_dbm(bandwidth, noise_figure);
    let wanted = rx_of(me) + tma.harmonic_gain(slots[me].harmonic, aoa_of(me));
    let interference = (0..nodes).filter(|&j| j != me).map(|j| {
        let gain = tma.harmonic_gain(slots[me].harmonic, aoa_of(j));
        let acl = adjacent_channel_leakage(slots[me].channel.abs_diff(slots[j].channel));
        rx_of(j) + gain + acl
    });
    wanted - DbmPower::power_sum(std::iter::once(noise).chain(interference))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmx_antenna::tma::Tma;

    fn tma() -> Tma {
        Tma::new(8, Hertz::from_ghz(24.0), Hertz::from_mhz(1.0))
    }

    fn bw() -> Hertz {
        Hertz::from_mhz(25.0)
    }

    fn nf() -> Db {
        Db::new(2.6)
    }

    fn slot(channel: usize, harmonic: i32) -> SdmSlot {
        SdmSlot { channel, harmonic }
    }

    #[test]
    fn lone_node_sinr_is_snr() {
        let t = tma();
        let aoa = t.harmonic_direction(0).unwrap();
        let up = [Uplink {
            rx_power: DbmPower::new(-60.0),
            aoa,
            slot: slot(0, 0),
        }];
        let sinr = sinr_all(&t, &up, bw(), nf())[0];
        // Noise floor ≈ −97.4 dBm; wanted −60 + harmonic gain.
        let expect = DbmPower::new(-60.0) + t.harmonic_gain(0, aoa) - thermal_noise_dbm(bw(), nf());
        assert!((sinr - expect).value().abs() < 0.1, "sinr {sinr}");
    }

    #[test]
    fn spatially_separated_cochannel_nodes_barely_interfere() {
        let t = tma();
        let d0 = t.harmonic_direction(0).unwrap();
        let d2 = t.harmonic_direction(2).unwrap();
        let ups = [
            Uplink {
                rx_power: DbmPower::new(-60.0),
                aoa: d0,
                slot: slot(0, 0),
            },
            Uplink {
                rx_power: DbmPower::new(-60.0),
                aoa: d2,
                slot: slot(0, 2),
            },
        ];
        let sinr = sinr_all(&t, &ups, bw(), nf());
        // Both nodes keep >20 dB despite sharing the channel.
        for (i, s) in sinr.iter().enumerate() {
            assert!(s.value() > 20.0, "node {i} sinr = {s}");
        }
    }

    #[test]
    fn cochannel_same_direction_collides() {
        let t = tma();
        let d0 = t.harmonic_direction(0).unwrap();
        let ups = [
            Uplink {
                rx_power: DbmPower::new(-60.0),
                aoa: d0,
                slot: slot(0, 0),
            },
            Uplink {
                rx_power: DbmPower::new(-60.0),
                aoa: d0,
                slot: slot(0, 0),
            },
        ];
        let sinr = sinr_all(&t, &ups, bw(), nf());
        // Equal-power co-channel, co-beam: SINR pinned near 0 dB.
        for s in &sinr {
            assert!(s.value() < 3.0, "sinr = {s}");
        }
    }

    #[test]
    fn adjacent_channel_isolation_restores_link() {
        let t = tma();
        let d0 = t.harmonic_direction(0).unwrap();
        let mk = |ch: usize| {
            [
                Uplink {
                    rx_power: DbmPower::new(-60.0),
                    aoa: d0,
                    slot: slot(0, 0),
                },
                Uplink {
                    rx_power: DbmPower::new(-60.0),
                    aoa: d0,
                    slot: slot(ch, 0),
                },
            ]
        };
        let same = sinr_all(&t, &mk(0), bw(), nf())[0];
        let adjacent = sinr_all(&t, &mk(1), bw(), nf())[0];
        let far = sinr_all(&t, &mk(3), bw(), nf())[0];
        assert!((adjacent - same).value() > 25.0);
        assert!(far > adjacent);
    }

    #[test]
    fn lut_sinr_tracks_exact_sinr() {
        let t = tma();
        let lut = t.gain_lut(0.25);
        let ups = [
            Uplink {
                rx_power: DbmPower::new(-60.0),
                aoa: t.harmonic_direction(0).unwrap() + Degrees::new(1.3),
                slot: slot(0, 0),
            },
            Uplink {
                rx_power: DbmPower::new(-58.0),
                aoa: t.harmonic_direction(2).unwrap() + Degrees::new(-0.7),
                slot: slot(1, 2),
            },
        ];
        let exact = sinr_all(&t, &ups, bw(), nf());
        let fast = sinr_all(&lut, &ups, bw(), nf());
        for (e, f) in exact.iter().zip(&fast) {
            assert!((e.value() - f.value()).abs() < 1.0, "{e} vs {f}");
        }
    }

    #[test]
    fn leakage_table_is_monotone() {
        for k in 0..5 {
            assert!(
                adjacent_channel_leakage(k + 1) <= adjacent_channel_leakage(k),
                "ACL not monotone at {k}"
            );
        }
        assert_eq!(adjacent_channel_leakage(0), Db::ZERO);
    }

    #[test]
    fn cross_ap_cochannel_interference_is_counted() {
        // Two nodes on the same global channel, "served" by different
        // APs: from this AP's perspective the foreign node is just an
        // interference term. Same direction → collision; a distant
        // harmonic direction → barely any loss. Exactly `sinr_all`'s
        // physics, but through the multi-AP accessor entry point.
        let t = tma();
        let d0 = t.harmonic_direction(0).unwrap();
        let d3 = t.harmonic_direction(3).unwrap();
        let slots = [slot(0, 0), slot(0, 0)];
        let rx = [DbmPower::new(-60.0), DbmPower::new(-60.0)];
        let collide = sinr_at_ap(&t, nf(), bw(), 0, 2, &slots, |j| rx[j], |_| d0);
        let aoa = [d0, d3];
        let separated = sinr_at_ap(&t, nf(), bw(), 0, 2, &slots, |j| rx[j], |j| aoa[j]);
        assert!(collide.value() < 3.0, "co-beam co-channel: {collide}");
        assert!(
            separated.value() > 20.0,
            "cross-beam co-channel: {separated}"
        );
        // Moving the foreign node to a distant channel restores the
        // link even co-beam (the reuse plan's channel partition case).
        let slots = [slot(0, 0), slot(3, 0)];
        let far = sinr_at_ap(&t, nf(), bw(), 0, 2, &slots, |j| rx[j], |_| d0);
        assert!(far > collide);
    }

    #[test]
    fn sinr_at_ap_matches_single_ap_engine_shape() {
        // With every node served by one AP, sinr_at_ap degenerates to
        // the single-AP formula (sinr_all modulo its noise-gain tweak).
        let t = tma();
        let ups = [
            Uplink {
                rx_power: DbmPower::new(-60.0),
                aoa: t.harmonic_direction(0).unwrap(),
                slot: slot(0, 0),
            },
            Uplink {
                rx_power: DbmPower::new(-58.0),
                aoa: t.harmonic_direction(2).unwrap() + Degrees::new(2.0),
                slot: slot(1, 2),
            },
        ];
        let slots: Vec<SdmSlot> = ups.iter().map(|u| u.slot).collect();
        let all = sinr_all(&t, &ups, bw(), nf());
        for (i, all_i) in all.iter().enumerate() {
            let one = sinr_at_ap(
                &t,
                nf(),
                bw(),
                i,
                ups.len(),
                &slots,
                |j| ups[j].rx_power,
                |j| ups[j].aoa,
            );
            assert!(
                (one.value() - all_i.value()).abs() < 1.5,
                "node {i}: {one} vs {all_i}"
            );
        }
    }

    #[test]
    fn stronger_interferer_hurts_more() {
        let t = tma();
        let d0 = t.harmonic_direction(0).unwrap();
        // Slightly off-grid so the leakage into harmonic 0 is finite
        // (exactly on-grid directions sit in the DFT beam's null).
        let d1 = t.harmonic_direction(1).unwrap() + Degrees::new(3.0);
        let mk = |p: f64| {
            [
                Uplink {
                    rx_power: DbmPower::new(-60.0),
                    aoa: d0,
                    slot: slot(0, 0),
                },
                Uplink {
                    rx_power: DbmPower::new(p),
                    aoa: d1,
                    slot: slot(0, 1),
                },
            ]
        };
        let weak = sinr_all(&t, &mk(-70.0), bw(), nf())[0];
        let strong = sinr_all(&t, &mk(-40.0), bw(), nf())[0];
        assert!(weak > strong);
    }
}
