//! A deterministic intra-simulation worker pool.
//!
//! [`crate::sim`]'s gather→commit event loop fans per-node *gather*
//! work (ray trace, fading, SINR, BER, delivery draw) out over worker
//! threads while the main thread keeps exclusive ownership of all
//! shared state for the *commit* phase. The pool is built once per run
//! (threads live inside one `std::thread::scope`), and each batch is a
//! single [`Dispatch::run`] call:
//!
//! * tasks are tagged with their batch slot, fanned out over an MPMC
//!   channel, and results re-assembled **by slot** — so the caller sees
//!   results in task order no matter which worker finished first;
//! * the main thread work-steals from the same task channel instead of
//!   blocking, so a pool of `t` threads really applies `t` cores;
//! * each task is a pure function of its payload (per-node context +
//!   frozen batch snapshot), so the result vector is bit-identical at
//!   any thread count — `threads == 1` simply runs inline with zero
//!   channel traffic.

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Resolves a thread-count request: `0` means auto — the `MMX_THREADS`
/// environment variable when set, otherwise the machine's available
/// parallelism. Matches the convention of `mmx_bench::par` and
/// [`crate::sim::run_batch`].
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::env::var("MMX_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Handle the event loop uses to fan one batch out; see [`scoped`].
pub enum Dispatch<'a, T, R> {
    /// Single-threaded: run every task inline, in slot order.
    Inline(&'a (dyn Fn(T) -> R + Sync)),
    /// Pooled: slot-tagged tasks over MPMC channels.
    Pool {
        /// The shared work function.
        work: &'a (dyn Fn(T) -> R + Sync),
        /// Task fan-out (main thread sends, everyone receives).
        task_tx: Sender<(usize, T)>,
        /// The main thread's work-stealing end of the task channel.
        task_rx: Receiver<(usize, T)>,
        /// Result fan-in.
        res_rx: Receiver<(usize, R)>,
    },
}

impl<T: Send, R: Send> Dispatch<'_, T, R> {
    /// Runs one batch: every task through the work function, results
    /// into `out` by slot (`out[i]` holds task `i`'s result). The slot
    /// assignment — not completion order — defines the output order, so
    /// `out` is bit-identical at any thread count.
    pub fn run(&mut self, tasks: Vec<T>, out: &mut Vec<Option<R>>) {
        out.clear();
        match self {
            Dispatch::Inline(work) => {
                out.extend(tasks.into_iter().map(|t| Some(work(t))));
            }
            Dispatch::Pool {
                work,
                task_tx,
                task_rx,
                res_rx,
            } => {
                let total = tasks.len();
                out.resize_with(total, || None);
                for (slot, t) in tasks.into_iter().enumerate() {
                    if task_tx.send((slot, t)).is_err() {
                        unreachable!("pool workers outlive the dispatcher");
                    }
                }
                let mut done = 0;
                while done < total {
                    // Prefer stealing a pending task over waiting on a
                    // result: the main thread is a full-rank worker.
                    if let Ok((slot, t)) = task_rx.try_recv() {
                        out[slot] = Some(work(t));
                        done += 1;
                        continue;
                    }
                    // No pending tasks: every remaining slot is being
                    // computed by a worker, so a result must arrive.
                    let (slot, r) = res_rx.recv().expect("pool workers are alive");
                    out[slot] = Some(r);
                    done += 1;
                }
            }
        }
    }
}

/// Runs `body` with a [`Dispatch`] backed by `threads.max(1) - 1`
/// workers (plus the work-stealing main thread) executing `work`.
///
/// The workers live exactly as long as `body`: they are scoped threads,
/// so `work` may borrow from the caller's stack (the simulator's
/// immutable per-run plan). `threads <= 1` spawns nothing and
/// dispatches inline.
pub fn scoped<T, R, W, B, O>(threads: usize, work: W, body: B) -> O
where
    T: Send,
    R: Send,
    W: Fn(T) -> R + Sync,
    B: FnOnce(&mut Dispatch<'_, T, R>) -> O,
{
    if threads <= 1 {
        return body(&mut Dispatch::Inline(&work));
    }
    std::thread::scope(|s| {
        let (task_tx, task_rx) = unbounded::<(usize, T)>();
        let (res_tx, res_rx) = unbounded::<(usize, R)>();
        for _ in 0..threads - 1 {
            let rx = task_rx.clone();
            let tx = res_tx.clone();
            let work = &work;
            s.spawn(move || {
                for (slot, task) in rx.iter() {
                    if tx.send((slot, work(task))).is_err() {
                        break;
                    }
                }
            });
        }
        let out = body(&mut Dispatch::Pool {
            work: &work,
            task_tx,
            task_rx,
            res_rx,
        });
        // Dropping the Dispatch (and with it the last task sender)
        // disconnects the task channel; workers drain and exit before
        // the scope closes.
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_batch(threads: usize, n: usize) -> Vec<u64> {
        scoped(
            threads,
            |x: u64| x * x,
            |disp| {
                let mut out = Vec::new();
                disp.run((0..n as u64).collect(), &mut out);
                out.into_iter().map(Option::unwrap).collect()
            },
        )
    }

    #[test]
    fn results_land_in_slot_order() {
        let want: Vec<u64> = (0..100u64).map(|x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(square_batch(threads, 100), want, "threads={threads}");
        }
    }

    #[test]
    fn many_small_batches_reuse_the_pool() {
        let got = scoped(
            4,
            |x: u64| x + 1,
            |disp| {
                let mut total = 0u64;
                let mut out = Vec::new();
                for batch in 0..50u64 {
                    disp.run((0..batch % 7).collect(), &mut out);
                    total += out.iter().map(|r| r.unwrap()).sum::<u64>();
                }
                total
            },
        );
        let want: u64 = (0..50u64)
            .map(|b| (0..b % 7).map(|x| x + 1).sum::<u64>())
            .sum();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_batches_are_fine() {
        let out = scoped(
            3,
            |x: u64| x,
            |disp| {
                let mut out = Vec::new();
                disp.run(Vec::new(), &mut out);
                out.len()
            },
        );
        assert_eq!(out, 0);
    }

    #[test]
    fn zero_threads_means_inline() {
        assert_eq!(square_batch(0, 10), square_batch(1, 10));
    }

    #[test]
    fn resolve_positive_request_verbatim() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }
}
