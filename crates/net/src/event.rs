//! A deterministic discrete-event engine.
//!
//! The simulator schedules packet transmissions, mobility steps and
//! blockage transitions as timestamped events. Ties are broken by
//! insertion order, so runs are bit-for-bit reproducible.

use mmx_units::Seconds;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: Seconds,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Seconds,
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Seconds::ZERO,
        }
    }

    /// The current simulation time (the timestamp of the last popped
    /// event).
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules an event at an absolute time. Panics on scheduling into
    /// the past.
    pub fn schedule_at(&mut self, time: Seconds, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past ({} < {})",
            time.value(),
            self.now.value()
        );
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Seconds, event: E) {
        assert!(delay.value() >= 0.0, "negative delay");
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(Seconds, E)> {
        let e = self.heap.pop()?;
        self.now = e.time;
        Some((e.time, e.event))
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Seconds> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(3.0), "c");
        q.schedule_at(Seconds::new(1.0), "a");
        q.schedule_at(Seconds::new(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule_at(Seconds::new(1.0), label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(5.0), ());
        assert_eq!(q.now(), Seconds::ZERO);
        q.pop();
        assert_eq!(q.now(), Seconds::new(5.0));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(2.0), "base");
        q.pop();
        q.schedule_in(Seconds::new(1.5), "later");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Seconds::new(3.5));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(1.0), ());
        assert_eq!(q.peek_time(), Some(Seconds::new(1.0)));
        assert_eq!(q.now(), Seconds::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(2.0), ());
        q.pop();
        q.schedule_at(Seconds::new(1.0), ());
    }

    #[test]
    fn interleaved_scheduling_and_popping() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(1.0), 1);
        q.schedule_at(Seconds::new(10.0), 10);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        q.schedule_in(Seconds::new(2.0), 3); // at t=3
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 3);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 10);
        assert!(q.pop().is_none());
    }
}
