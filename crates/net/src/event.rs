//! A deterministic discrete-event engine.
//!
//! The simulator schedules packet transmissions, mobility steps and
//! blockage transitions as timestamped events.
//!
//! # Total order
//!
//! The queue defines a *total* order over events, which is the spec the
//! phase-parallel drain in `sim` batches against:
//!
//! 1. earlier `time` first (times are finite by construction, so the
//!    comparison is total), and
//! 2. among events sharing a timestamp, **insertion order** (FIFO):
//!    every `schedule_*` call stamps a monotonically increasing sequence
//!    number, and ties break by the lower sequence number.
//!
//! Consequently `pop` is deterministic: two queues fed the same sequence
//! of `schedule_*` calls pop the same `(time, event)` sequence,
//! bit-for-bit, and any batching scheme that (a) drains a prefix of that
//! order and (b) performs the *scheduling* side effects of the drained
//! events in the same drained order assigns exactly the sequence numbers
//! the un-batched loop would have — so the batched and serial engines
//! stay byte-identical. [`peek`](EventQueue::peek) exposes the head
//! without popping so a drain can decide where a batch ends.
//!
//! Scheduling is fallible: an event in the past or at a non-finite time
//! is a caller bug the queue reports as a [`ScheduleError`] instead of
//! panicking, so a simulation driven by injected faults can surface the
//! problem as data rather than tearing the process down.

use mmx_units::Seconds;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Why an event could not be scheduled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleError {
    /// The requested time precedes the queue's current time.
    PastTime {
        /// The rejected timestamp.
        time: Seconds,
        /// The queue's clock when the request was made.
        now: Seconds,
    },
    /// The requested time (or delay) was NaN or infinite.
    NonFinite,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::PastTime { time, now } => write!(
                f,
                "cannot schedule into the past ({} < {})",
                time.value(),
                now.value()
            ),
            ScheduleError::NonFinite => write!(f, "event time must be finite"),
        }
    }
}

impl std::error::Error for ScheduleError {}

struct Entry<E> {
    time: Seconds,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first. Times are
        // guaranteed finite by `schedule_at`, so the comparison is total.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite by construction")
            .then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Seconds,
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Seconds::ZERO,
        }
    }

    /// The current simulation time (the timestamp of the last popped
    /// event).
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules an event at an absolute time. Fails on a non-finite
    /// time or one before [`now`](Self::now).
    pub fn schedule_at(&mut self, time: Seconds, event: E) -> Result<(), ScheduleError> {
        if !time.value().is_finite() {
            return Err(ScheduleError::NonFinite);
        }
        if time < self.now {
            return Err(ScheduleError::PastTime {
                time,
                now: self.now,
            });
        }
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        Ok(())
    }

    /// Schedules an event `delay` after the current time. Fails on a
    /// negative or non-finite delay.
    pub fn schedule_in(&mut self, delay: Seconds, event: E) -> Result<(), ScheduleError> {
        if !delay.value().is_finite() {
            return Err(ScheduleError::NonFinite);
        }
        if delay.value() < 0.0 {
            return Err(ScheduleError::PastTime {
                time: self.now + delay,
                now: self.now,
            });
        }
        self.schedule_at(self.now + delay, event)
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(Seconds, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.time >= self.now, "heap yielded an out-of-order event");
        self.now = e.time;
        Some((e.time, e.event))
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Seconds> {
        self.heap.peek().map(|e| e.time)
    }

    /// The next event in the total order — `(time, seq-FIFO)`, see the
    /// module docs — without popping it or advancing the clock.
    pub fn peek(&self) -> Option<(Seconds, &E)> {
        self.heap.peek().map(|e| (e.time, &e.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(3.0), "c").unwrap();
        q.schedule_at(Seconds::new(1.0), "a").unwrap();
        q.schedule_at(Seconds::new(2.0), "b").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule_at(Seconds::new(1.0), label).unwrap();
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(5.0), ()).unwrap();
        assert_eq!(q.now(), Seconds::ZERO);
        q.pop();
        assert_eq!(q.now(), Seconds::new(5.0));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(2.0), "base").unwrap();
        q.pop();
        q.schedule_in(Seconds::new(1.5), "later").unwrap();
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Seconds::new(3.5));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(1.0), ()).unwrap();
        assert_eq!(q.peek_time(), Some(Seconds::new(1.0)));
        assert_eq!(q.now(), Seconds::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn scheduling_into_the_past_is_an_error() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(2.0), ()).unwrap();
        q.pop();
        assert_eq!(
            q.schedule_at(Seconds::new(1.0), ()),
            Err(ScheduleError::PastTime {
                time: Seconds::new(1.0),
                now: Seconds::new(2.0),
            })
        );
        // The failed schedule left the queue untouched.
        assert!(q.is_empty());
    }

    #[test]
    fn non_finite_times_are_errors() {
        let mut q = EventQueue::new();
        assert_eq!(
            q.schedule_at(Seconds::new(f64::NAN), ()),
            Err(ScheduleError::NonFinite)
        );
        assert_eq!(
            q.schedule_at(Seconds::new(f64::INFINITY), ()),
            Err(ScheduleError::NonFinite)
        );
        assert_eq!(
            q.schedule_in(Seconds::new(f64::NAN), ()),
            Err(ScheduleError::NonFinite)
        );
        assert!(q.is_empty());
    }

    #[test]
    fn negative_delay_is_an_error() {
        let mut q = EventQueue::new();
        assert!(matches!(
            q.schedule_in(Seconds::new(-1.0), ()),
            Err(ScheduleError::PastTime { .. })
        ));
    }

    #[test]
    fn schedule_error_displays() {
        let past = ScheduleError::PastTime {
            time: Seconds::new(1.0),
            now: Seconds::new(2.0),
        };
        assert!(past.to_string().contains("past"));
        assert!(ScheduleError::NonFinite.to_string().contains("finite"));
    }

    #[test]
    fn peek_agrees_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(2.0), "b").unwrap();
        q.schedule_at(Seconds::new(1.0), "a").unwrap();
        while let Some((pt, &pe)) = q.peek() {
            let before = q.now();
            let (t, e) = q.pop().unwrap();
            assert_eq!((pt, pe), (t, e));
            assert!(before <= t, "peek must not advance the clock");
        }
        assert!(q.peek().is_none());
    }

    #[test]
    fn total_order_is_time_then_fifo() {
        // The spec the batched drain relies on: same-timestamp events pop
        // in insertion order even when their scheduling interleaves with
        // other timestamps and with pops.
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(2.0), "t2-first").unwrap();
        q.schedule_at(Seconds::new(1.0), "t1").unwrap();
        q.schedule_at(Seconds::new(2.0), "t2-second").unwrap();
        assert_eq!(q.pop().unwrap().1, "t1");
        // A tie scheduled *after* pops still lands behind earlier ties:
        // sequence numbers are global, not per-timestamp.
        q.schedule_at(Seconds::new(2.0), "t2-third").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["t2-first", "t2-second", "t2-third"]);
    }

    #[test]
    fn interleaved_scheduling_and_popping() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(1.0), 1).unwrap();
        q.schedule_at(Seconds::new(10.0), 10).unwrap();
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        q.schedule_in(Seconds::new(2.0), 3).unwrap(); // at t=3
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 3);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 10);
        assert!(q.pop().is_none());
    }
}
