//! Stop-and-wait ARQ — link-layer reliability on top of the PHY.
//!
//! The paper stops at physical BER ("acceptable for most wireless
//! applications"); a deployed network retransmits lost packets. This
//! module adds the simplest ARQ that fits mmX's architecture: the ACK
//! rides the out-of-band control link (BLE), so the mmWave node stays
//! TX-only — no mmWave receiver needed at the node, preserving the
//! two-component radio.

use mmx_units::{BitRate, Seconds};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an ARQ operation was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArqError {
    /// The supplied packet-error rate was outside `[0, 1]` (or NaN).
    PerOutOfRange(
        /// The offending value.
        f64,
    ),
}

impl fmt::Display for ArqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArqError::PerOutOfRange(per) => write!(f, "PER out of range: {per}"),
        }
    }
}

impl std::error::Error for ArqError {}

/// ARQ policy parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ArqConfig {
    /// Retransmissions allowed after the first attempt.
    pub max_retries: u8,
    /// Time to wait for the control-plane ACK before retrying.
    pub ack_timeout: Seconds,
}

impl ArqConfig {
    /// Defaults: 3 retries, 5 ms ACK timeout (BLE connection-event
    /// scale).
    pub fn standard() -> Self {
        ArqConfig {
            max_retries: 3,
            ack_timeout: Seconds::from_millis(5.0),
        }
    }
}

/// Outcome of transmitting one packet under ARQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// Delivered on attempt `attempts` (1 = first try).
    Delivered {
        /// Number of attempts used.
        attempts: u8,
    },
    /// All attempts failed.
    Dropped,
}

/// Stop-and-wait ARQ state and statistics.
#[derive(Debug, Clone, Default)]
pub struct StopAndWait {
    cfg: ArqConfig,
    offered: u64,
    delivered: u64,
    attempts_total: u64,
}

impl Default for ArqConfig {
    fn default() -> Self {
        Self::standard()
    }
}

impl StopAndWait {
    /// Creates an ARQ instance.
    pub fn new(cfg: ArqConfig) -> Self {
        StopAndWait {
            cfg,
            offered: 0,
            delivered: 0,
            attempts_total: 0,
        }
    }

    /// The policy.
    pub fn config(&self) -> ArqConfig {
        self.cfg
    }

    /// Transmits one packet over a link with packet-error rate `per`,
    /// drawing attempt outcomes from `rng`. A PER outside `[0, 1]`
    /// (including NaN) is rejected without touching the statistics.
    pub fn transmit<R: Rng + ?Sized>(
        &mut self,
        per: f64,
        rng: &mut R,
    ) -> Result<TxOutcome, ArqError> {
        if !(0.0..=1.0).contains(&per) {
            return Err(ArqError::PerOutOfRange(per));
        }
        self.offered += 1;
        for attempt in 1..=(1 + self.cfg.max_retries) {
            self.attempts_total += 1;
            if rng.gen::<f64>() >= per {
                self.delivered += 1;
                return Ok(TxOutcome::Delivered { attempts: attempt });
            }
        }
        Ok(TxOutcome::Dropped)
    }

    /// Packets offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Packets delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Residual loss rate after ARQ.
    pub fn residual_loss(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        1.0 - self.delivered as f64 / self.offered as f64
    }

    /// Mean attempts per offered packet.
    pub fn mean_attempts(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.attempts_total as f64 / self.offered as f64
    }
}

/// Analytic delivery probability under stop-and-wait:
/// `1 − per^(1+retries)`. Out-of-range PERs are clamped to `[0, 1]`
/// (NaN to 1, the pessimistic end).
pub fn delivery_probability(per: f64, cfg: &ArqConfig) -> f64 {
    debug_assert!((0.0..=1.0).contains(&per), "PER out of range: {per}");
    let per = if per.is_nan() {
        1.0
    } else {
        per.clamp(0.0, 1.0)
    };
    1.0 - per.powi(1 + cfg.max_retries as i32)
}

/// Analytic expected attempts per packet (attempts are capped):
/// `Σ_{k=1..n} per^(k−1)` with `n = 1+retries`.
pub fn expected_attempts(per: f64, cfg: &ArqConfig) -> f64 {
    debug_assert!((0.0..=1.0).contains(&per), "PER out of range: {per}");
    let per = if per.is_nan() {
        1.0
    } else {
        per.clamp(0.0, 1.0)
    };
    let n = 1 + cfg.max_retries as i32;
    if per == 0.0 {
        return 1.0;
    }
    (0..n).map(|k| per.powi(k)).sum()
}

/// Effective goodput of a PHY rate under ARQ: delivered payload per unit
/// airtime, `rate × P_deliver / E[attempts]`.
pub fn effective_goodput(rate: BitRate, per: f64, cfg: &ArqConfig) -> BitRate {
    rate * (delivery_probability(per, cfg) / expected_attempts(per, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn perfect_link_single_attempt() {
        let mut arq = StopAndWait::new(ArqConfig::standard());
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(
                arq.transmit(0.0, &mut r),
                Ok(TxOutcome::Delivered { attempts: 1 })
            );
        }
        assert_eq!(arq.mean_attempts(), 1.0);
        assert_eq!(arq.residual_loss(), 0.0);
    }

    #[test]
    fn dead_link_drops_after_max_retries() {
        let mut arq = StopAndWait::new(ArqConfig::standard());
        let mut r = rng();
        assert_eq!(arq.transmit(1.0, &mut r), Ok(TxOutcome::Dropped));
        assert_eq!(arq.mean_attempts(), 4.0); // 1 + 3 retries
        assert_eq!(arq.residual_loss(), 1.0);
    }

    #[test]
    fn monte_carlo_matches_analytics() {
        let cfg = ArqConfig::standard();
        let per = 0.3;
        let mut arq = StopAndWait::new(cfg);
        let mut r = rng();
        let n = 100_000;
        for _ in 0..n {
            arq.transmit(per, &mut r).expect("valid PER");
        }
        let p_deliver = 1.0 - arq.residual_loss();
        assert!(
            (p_deliver - delivery_probability(per, &cfg)).abs() < 0.005,
            "delivery {p_deliver} vs {}",
            delivery_probability(per, &cfg)
        );
        assert!(
            (arq.mean_attempts() - expected_attempts(per, &cfg)).abs() < 0.01,
            "attempts {} vs {}",
            arq.mean_attempts(),
            expected_attempts(per, &cfg)
        );
    }

    #[test]
    fn arq_rescues_lossy_links() {
        // PER 0.3 → residual 0.8% with 3 retries.
        let cfg = ArqConfig::standard();
        let residual = 1.0 - delivery_probability(0.3, &cfg);
        assert!(residual < 0.01, "residual = {residual}");
    }

    #[test]
    fn goodput_bounds() {
        let cfg = ArqConfig::standard();
        let r = BitRate::from_mbps(100.0);
        // Clean link: full rate.
        assert!((effective_goodput(r, 0.0, &cfg).mbps() - 100.0).abs() < 1e-9);
        // Dead link: zero.
        assert!(effective_goodput(r, 1.0, &cfg).mbps() < 1e-9);
        // Monotone decreasing in PER.
        let mut prev = f64::INFINITY;
        for per in [0.0, 0.1, 0.3, 0.5, 0.8, 1.0] {
            let g = effective_goodput(r, per, &cfg).mbps();
            assert!(g <= prev + 1e-12, "goodput rose at PER {per}");
            prev = g;
        }
    }

    #[test]
    fn more_retries_lower_residual_loss() {
        let few = ArqConfig {
            max_retries: 1,
            ack_timeout: Seconds::from_millis(5.0),
        };
        let many = ArqConfig {
            max_retries: 7,
            ack_timeout: Seconds::from_millis(5.0),
        };
        assert!(delivery_probability(0.4, &many) > delivery_probability(0.4, &few));
    }

    #[test]
    fn invalid_per_rejected() {
        let mut arq = StopAndWait::new(ArqConfig::standard());
        assert_eq!(
            arq.transmit(1.5, &mut rng()),
            Err(ArqError::PerOutOfRange(1.5))
        );
        assert!(matches!(
            arq.transmit(f64::NAN, &mut rng()),
            Err(ArqError::PerOutOfRange(_))
        ));
        // Rejected calls leave the statistics untouched.
        assert_eq!(arq.offered(), 0);
        assert_eq!(arq.mean_attempts(), 0.0);
        assert!(ArqError::PerOutOfRange(1.5).to_string().contains("1.5"));
    }
}
