//! Frequency-division multiplexing: band plans and the demand-driven
//! channel allocator.
//!
//! §7(a): "mmX divides the available spectrum between nodes depending on
//! their data rate demand. ... The channels are specified by the AP to
//! each node in the initialization stage." OOK at 1 bit/symbol needs
//! roughly `rate × (1+rolloff)` of bandwidth; the allocator packs
//! channels (plus guard bands) into the unlicensed band low-to-high.

use mmx_units::{Band, BitRate, Hertz};
use serde::{Deserialize, Serialize};

/// A band plan: the unlicensed band plus allocation policy constants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandPlan {
    band: Band,
    guard: Hertz,
    rolloff: f64,
    min_channel: Hertz,
}

/// A channel granted to a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelAssignment {
    /// Channel center frequency.
    pub center: Hertz,
    /// Channel width (signal bandwidth, guard not included).
    pub width: Hertz,
}

impl ChannelAssignment {
    /// The occupied sub-band.
    pub fn band(&self) -> Band {
        Band::centered(self.center, self.width)
    }
}

/// Why an allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The total demand exceeds the band: the network must fall back to
    /// SDM (§7(b)).
    BandExhausted,
    /// A single demand exceeds what OOK in this band could ever carry.
    DemandTooLarge,
}

impl BandPlan {
    /// Creates a plan over `band` with a `guard` between channels.
    pub fn new(band: Band, guard: Hertz) -> Self {
        assert!(guard.hz() >= 0.0, "negative guard");
        BandPlan {
            band,
            guard,
            rolloff: 0.25,
            min_channel: Hertz::from_mhz(1.0),
        }
    }

    /// The 24 GHz ISM plan used by the prototype: 250 MHz with 1 MHz
    /// guards.
    pub fn ism_24ghz() -> Self {
        BandPlan::new(Band::ism_24ghz(), Hertz::from_mhz(1.0))
    }

    /// The 60 GHz plan (7 GHz of spectrum, §7(a)).
    pub fn unlicensed_60ghz() -> Self {
        BandPlan::new(Band::unlicensed_60ghz(), Hertz::from_mhz(10.0))
    }

    /// The underlying band.
    pub fn band(&self) -> &Band {
        &self.band
    }

    /// Bandwidth needed to carry `rate` with OOK (1 bit/symbol) plus
    /// roll-off, floored at the minimum channel.
    pub fn width_for(&self, rate: BitRate) -> Hertz {
        Hertz::new(rate.bps() * (1.0 + self.rolloff)).max(self.min_channel)
    }

    /// The data rate a channel of `width` supports (inverse of
    /// [`width_for`](Self::width_for)).
    pub fn rate_for(&self, width: Hertz) -> BitRate {
        BitRate::new(width.hz() / (1.0 + self.rolloff))
    }

    /// Allocates channels for a set of demands, low-to-high. Returns one
    /// assignment per demand, in order.
    pub fn allocate(&self, demands: &[BitRate]) -> Result<Vec<ChannelAssignment>, AllocError> {
        let mut cursor = self.band.low;
        let mut out = Vec::with_capacity(demands.len());
        for &d in demands {
            let width = self.width_for(d);
            if width.hz() > self.band.bandwidth().hz() {
                return Err(AllocError::DemandTooLarge);
            }
            let top = cursor + width;
            if top.hz() > self.band.high.hz() + 1e-3 {
                return Err(AllocError::BandExhausted);
            }
            out.push(ChannelAssignment {
                center: cursor + width / 2.0,
                width,
            });
            cursor = top + self.guard;
        }
        Ok(out)
    }

    /// How many equal channels of `width` fit in the band.
    pub fn capacity(&self, width: Hertz) -> usize {
        let per = width.hz() + self.guard.hz();
        if per <= 0.0 {
            return 0;
        }
        // The last channel does not need a trailing guard.
        ((self.band.bandwidth().hz() + self.guard.hz()) / per).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b}");
    }

    #[test]
    fn hd_camera_gets_a_few_mhz() {
        // §4: "if a device needs to stream an HD video, a few MHz of
        // bandwidth must be allocated to it" (8–10 Mbps application rate).
        let plan = BandPlan::ism_24ghz();
        let w = plan.width_for(BitRate::from_mbps(8.0));
        assert!((8.0..=15.0).contains(&w.mhz()), "width = {w}");
    }

    #[test]
    fn allocation_is_disjoint_and_in_band() {
        let plan = BandPlan::ism_24ghz();
        let demands = vec![BitRate::from_mbps(10.0); 8];
        let got = plan.allocate(&demands).expect("fits");
        assert_eq!(got.len(), 8);
        for (i, a) in got.iter().enumerate() {
            assert!(plan.band().contains_band(&a.band()), "ch {i} out of band");
            for b in &got[i + 1..] {
                assert!(!a.band().overlaps(&b.band()), "channels overlap");
            }
        }
    }

    #[test]
    fn guard_bands_separate_neighbors() {
        let plan = BandPlan::ism_24ghz();
        let got = plan
            .allocate(&[BitRate::from_mbps(10.0), BitRate::from_mbps(10.0)])
            .expect("fits");
        let gap = got[1].band().low - got[0].band().high;
        close(gap.mhz(), 1.0, 1e-9);
    }

    #[test]
    fn band_exhaustion_detected() {
        let plan = BandPlan::ism_24ghz();
        // 250 MHz / (125+1) MHz: two 100 Mbps channels do not fit.
        let demands = vec![BitRate::from_mbps(100.0); 2];
        assert_eq!(plan.allocate(&demands), Err(AllocError::BandExhausted));
    }

    #[test]
    fn oversized_single_demand_detected() {
        let plan = BandPlan::ism_24ghz();
        assert_eq!(
            plan.allocate(&[BitRate::from_mbps(500.0)]),
            Err(AllocError::DemandTooLarge)
        );
    }

    #[test]
    fn sixty_ghz_band_carries_many_more() {
        let ism = BandPlan::ism_24ghz();
        let v = BandPlan::unlicensed_60ghz();
        let w = Hertz::from_mhz(25.0);
        assert!(v.capacity(w) > 10 * ism.capacity(w));
    }

    #[test]
    fn capacity_matches_allocation() {
        let plan = BandPlan::ism_24ghz();
        let w = Hertz::from_mhz(25.0);
        let cap = plan.capacity(w);
        // `cap` channels of exactly this width must allocate...
        let rate = plan.rate_for(w);
        assert!(plan.allocate(&vec![rate; cap]).is_ok());
        // ... and one more must not.
        assert!(plan.allocate(&vec![rate; cap + 1]).is_err());
    }

    #[test]
    fn width_rate_roundtrip() {
        let plan = BandPlan::ism_24ghz();
        let r = BitRate::from_mbps(42.0);
        close(plan.rate_for(plan.width_for(r)).mbps(), 42.0, 1e-9);
    }

    #[test]
    fn tiny_demand_gets_minimum_channel() {
        let plan = BandPlan::ism_24ghz();
        let w = plan.width_for(BitRate::from_kbps(10.0));
        close(w.mhz(), 1.0, 1e-9);
    }

    #[test]
    fn empty_demand_list_is_fine() {
        let plan = BandPlan::ism_24ghz();
        assert!(plan.allocate(&[]).unwrap().is_empty());
    }
}
