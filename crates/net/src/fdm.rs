//! Frequency-division multiplexing: band plans and the demand-driven
//! channel allocator.
//!
//! §7(a): "mmX divides the available spectrum between nodes depending on
//! their data rate demand. ... The channels are specified by the AP to
//! each node in the initialization stage." OOK at 1 bit/symbol needs
//! roughly `rate × (1+rolloff)` of bandwidth; the allocator packs
//! channels (plus guard bands) into the unlicensed band low-to-high.

use mmx_units::{Band, BitRate, Hertz};
use serde::{Deserialize, Serialize};

/// A band plan: the unlicensed band plus allocation policy constants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandPlan {
    band: Band,
    guard: Hertz,
    rolloff: f64,
    min_channel: Hertz,
}

/// A channel granted to a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelAssignment {
    /// Channel center frequency.
    pub center: Hertz,
    /// Channel width (signal bandwidth, guard not included).
    pub width: Hertz,
}

impl ChannelAssignment {
    /// The occupied sub-band.
    pub fn band(&self) -> Band {
        Band::centered(self.center, self.width)
    }
}

/// Why an allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The total demand exceeds the band: the network must fall back to
    /// SDM (§7(b)).
    BandExhausted,
    /// A single demand exceeds what OOK in this band could ever carry.
    DemandTooLarge,
}

/// Why a band plan (or a channelization checked against one) is
/// invalid. Returned by [`BandPlan::checked`] and
/// [`BandPlan::validate_channels`] instead of silently accepting a bad
/// plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandPlanError {
    /// A band edge is NaN or infinite.
    NonFiniteBand,
    /// The band's high edge does not exceed its low edge.
    EmptyBand,
    /// The guard is negative or non-finite.
    BadGuard,
    /// Sub-channel `index` sticks out of the plan's band.
    ChannelOutOfBand {
        /// Index of the offending channel in the checked list.
        index: usize,
    },
    /// Sub-channels `a` and `b` overlap.
    ChannelsOverlap {
        /// First overlapping channel.
        a: usize,
        /// Second overlapping channel.
        b: usize,
    },
}

impl std::fmt::Display for BandPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BandPlanError::NonFiniteBand => write!(f, "band edges must be finite"),
            BandPlanError::EmptyBand => write!(f, "band high edge must exceed its low edge"),
            BandPlanError::BadGuard => write!(f, "guard must be finite and non-negative"),
            BandPlanError::ChannelOutOfBand { index } => {
                write!(f, "sub-channel {index} sticks out of the band")
            }
            BandPlanError::ChannelsOverlap { a, b } => {
                write!(f, "sub-channels {a} and {b} overlap")
            }
        }
    }
}

impl BandPlan {
    /// Creates a plan over `band` with a `guard` between channels,
    /// validating both. Bad plans used to be accepted silently (only a
    /// negative guard asserted); now every constructor funnels through
    /// this typed check.
    pub fn checked(band: Band, guard: Hertz) -> Result<Self, BandPlanError> {
        if !band.low.hz().is_finite() || !band.high.hz().is_finite() {
            return Err(BandPlanError::NonFiniteBand);
        }
        if band.high.hz() <= band.low.hz() {
            return Err(BandPlanError::EmptyBand);
        }
        if !guard.hz().is_finite() || guard.hz() < 0.0 {
            return Err(BandPlanError::BadGuard);
        }
        Ok(BandPlan {
            band,
            guard,
            rolloff: 0.25,
            min_channel: Hertz::from_mhz(1.0),
        })
    }

    /// Creates a plan over `band` with a `guard` between channels.
    ///
    /// # Panics
    ///
    /// On an invalid band or guard — use [`BandPlan::checked`] when the
    /// inputs are not compile-time constants.
    pub fn new(band: Band, guard: Hertz) -> Self {
        match Self::checked(band, guard) {
            Ok(plan) => plan,
            Err(e) => panic!("invalid band plan: {e}"),
        }
    }

    /// Checks that a channelization fits this plan: every sub-channel
    /// inside the band, no two overlapping. The allocator upholds this
    /// by construction; externally supplied tables (the multi-AP reuse
    /// plan's global channel grid, hand-built plans in tests) go
    /// through here.
    pub fn validate_channels(&self, channels: &[ChannelAssignment]) -> Result<(), BandPlanError> {
        for (i, c) in channels.iter().enumerate() {
            if !self.band.contains_band(&c.band()) {
                return Err(BandPlanError::ChannelOutOfBand { index: i });
            }
            for (j, d) in channels.iter().enumerate().skip(i + 1) {
                if c.band().overlaps(&d.band()) {
                    return Err(BandPlanError::ChannelsOverlap { a: i, b: j });
                }
            }
        }
        Ok(())
    }

    /// The equal-width channel grid that [`Self::capacity`] counts:
    /// `capacity(width)` channels of `width`, guard-separated, packed
    /// low-to-high. This is the global channel table the multi-AP reuse
    /// plan partitions across APs.
    pub fn channel_table(&self, width: Hertz) -> Vec<ChannelAssignment> {
        let n = self.capacity(width);
        (0..n)
            .map(|i| ChannelAssignment {
                center: self.band.low + (width + self.guard) * i as f64 + width / 2.0,
                width,
            })
            .collect()
    }

    /// The 24 GHz ISM plan used by the prototype: 250 MHz with 1 MHz
    /// guards.
    pub fn ism_24ghz() -> Self {
        BandPlan::new(Band::ism_24ghz(), Hertz::from_mhz(1.0))
    }

    /// The 60 GHz plan (7 GHz of spectrum, §7(a)).
    pub fn unlicensed_60ghz() -> Self {
        BandPlan::new(Band::unlicensed_60ghz(), Hertz::from_mhz(10.0))
    }

    /// The underlying band.
    pub fn band(&self) -> &Band {
        &self.band
    }

    /// Bandwidth needed to carry `rate` with OOK (1 bit/symbol) plus
    /// roll-off, floored at the minimum channel.
    pub fn width_for(&self, rate: BitRate) -> Hertz {
        Hertz::new(rate.bps() * (1.0 + self.rolloff)).max(self.min_channel)
    }

    /// The data rate a channel of `width` supports (inverse of
    /// [`width_for`](Self::width_for)).
    pub fn rate_for(&self, width: Hertz) -> BitRate {
        BitRate::new(width.hz() / (1.0 + self.rolloff))
    }

    /// Allocates channels for a set of demands, low-to-high. Returns one
    /// assignment per demand, in order.
    pub fn allocate(&self, demands: &[BitRate]) -> Result<Vec<ChannelAssignment>, AllocError> {
        let mut cursor = self.band.low;
        let mut out = Vec::with_capacity(demands.len());
        for &d in demands {
            let width = self.width_for(d);
            if width.hz() > self.band.bandwidth().hz() {
                return Err(AllocError::DemandTooLarge);
            }
            let top = cursor + width;
            if top.hz() > self.band.high.hz() + 1e-3 {
                return Err(AllocError::BandExhausted);
            }
            out.push(ChannelAssignment {
                center: cursor + width / 2.0,
                width,
            });
            cursor = top + self.guard;
        }
        Ok(out)
    }

    /// How many equal channels of `width` fit in the band.
    pub fn capacity(&self, width: Hertz) -> usize {
        let per = width.hz() + self.guard.hz();
        if per <= 0.0 {
            return 0;
        }
        // The last channel does not need a trailing guard.
        ((self.band.bandwidth().hz() + self.guard.hz()) / per).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b}");
    }

    #[test]
    fn hd_camera_gets_a_few_mhz() {
        // §4: "if a device needs to stream an HD video, a few MHz of
        // bandwidth must be allocated to it" (8–10 Mbps application rate).
        let plan = BandPlan::ism_24ghz();
        let w = plan.width_for(BitRate::from_mbps(8.0));
        assert!((8.0..=15.0).contains(&w.mhz()), "width = {w}");
    }

    #[test]
    fn allocation_is_disjoint_and_in_band() {
        let plan = BandPlan::ism_24ghz();
        let demands = vec![BitRate::from_mbps(10.0); 8];
        let got = plan.allocate(&demands).expect("fits");
        assert_eq!(got.len(), 8);
        for (i, a) in got.iter().enumerate() {
            assert!(plan.band().contains_band(&a.band()), "ch {i} out of band");
            for b in &got[i + 1..] {
                assert!(!a.band().overlaps(&b.band()), "channels overlap");
            }
        }
    }

    #[test]
    fn guard_bands_separate_neighbors() {
        let plan = BandPlan::ism_24ghz();
        let got = plan
            .allocate(&[BitRate::from_mbps(10.0), BitRate::from_mbps(10.0)])
            .expect("fits");
        let gap = got[1].band().low - got[0].band().high;
        close(gap.mhz(), 1.0, 1e-9);
    }

    #[test]
    fn band_exhaustion_detected() {
        let plan = BandPlan::ism_24ghz();
        // 250 MHz / (125+1) MHz: two 100 Mbps channels do not fit.
        let demands = vec![BitRate::from_mbps(100.0); 2];
        assert_eq!(plan.allocate(&demands), Err(AllocError::BandExhausted));
    }

    #[test]
    fn oversized_single_demand_detected() {
        let plan = BandPlan::ism_24ghz();
        assert_eq!(
            plan.allocate(&[BitRate::from_mbps(500.0)]),
            Err(AllocError::DemandTooLarge)
        );
    }

    #[test]
    fn sixty_ghz_band_carries_many_more() {
        let ism = BandPlan::ism_24ghz();
        let v = BandPlan::unlicensed_60ghz();
        let w = Hertz::from_mhz(25.0);
        assert!(v.capacity(w) > 10 * ism.capacity(w));
    }

    #[test]
    fn capacity_matches_allocation() {
        let plan = BandPlan::ism_24ghz();
        let w = Hertz::from_mhz(25.0);
        let cap = plan.capacity(w);
        // `cap` channels of exactly this width must allocate...
        let rate = plan.rate_for(w);
        assert!(plan.allocate(&vec![rate; cap]).is_ok());
        // ... and one more must not.
        assert!(plan.allocate(&vec![rate; cap + 1]).is_err());
    }

    #[test]
    fn width_rate_roundtrip() {
        let plan = BandPlan::ism_24ghz();
        let r = BitRate::from_mbps(42.0);
        close(plan.rate_for(plan.width_for(r)).mbps(), 42.0, 1e-9);
    }

    #[test]
    fn tiny_demand_gets_minimum_channel() {
        let plan = BandPlan::ism_24ghz();
        let w = plan.width_for(BitRate::from_kbps(10.0));
        close(w.mhz(), 1.0, 1e-9);
    }

    #[test]
    fn empty_demand_list_is_fine() {
        let plan = BandPlan::ism_24ghz();
        assert!(plan.allocate(&[]).unwrap().is_empty());
    }

    #[test]
    fn checked_rejects_bad_plans_with_typed_errors() {
        let ism = Band::ism_24ghz();
        let err = |b, g| BandPlan::checked(b, g).unwrap_err();
        assert_eq!(
            err(
                Band {
                    low: ism.high,
                    high: ism.low
                },
                Hertz::from_mhz(1.0)
            ),
            BandPlanError::EmptyBand
        );
        assert_eq!(err(ism, Hertz::new(-1.0)), BandPlanError::BadGuard);
        assert_eq!(err(ism, Hertz::new(f64::NAN)), BandPlanError::BadGuard);
        assert_eq!(
            err(
                Band {
                    low: Hertz::new(f64::NEG_INFINITY),
                    high: ism.high
                },
                Hertz::from_mhz(1.0)
            ),
            BandPlanError::NonFiniteBand
        );
        assert!(BandPlan::checked(ism, Hertz::from_mhz(1.0)).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid band plan")]
    fn new_panics_on_inverted_band() {
        let ism = Band::ism_24ghz();
        let _ = BandPlan::new(
            Band {
                low: ism.high,
                high: ism.low,
            },
            Hertz::new(0.0),
        );
    }

    #[test]
    fn channel_table_matches_capacity_and_validates() {
        let plan = BandPlan::ism_24ghz();
        let w = Hertz::from_mhz(25.0);
        let table = plan.channel_table(w);
        assert_eq!(table.len(), plan.capacity(w));
        plan.validate_channels(&table).expect("grid is well-formed");
    }

    #[test]
    fn validate_channels_catches_overlap_and_out_of_band() {
        let plan = BandPlan::ism_24ghz();
        let w = Hertz::from_mhz(25.0);
        let mut table = plan.channel_table(w);
        // Slide channel 1 onto channel 0.
        table[1].center = table[0].center;
        assert_eq!(
            plan.validate_channels(&table),
            Err(BandPlanError::ChannelsOverlap { a: 0, b: 1 })
        );
        let mut table = plan.channel_table(w);
        table[2].center = plan.band().high + Hertz::from_mhz(5.0);
        assert_eq!(
            plan.validate_channels(&table),
            Err(BandPlanError::ChannelOutOfBand { index: 2 })
        );
    }
}
