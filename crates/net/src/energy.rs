//! Network-wide energy accounting.
//!
//! Tracks the joules each node spends (radio airtime + control traffic)
//! and the bits it delivers — producing the nJ/bit figure of merit Table 1
//! is built around.

use mmx_units::{Seconds, Watts};

/// A per-node energy meter.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyMeter {
    joules: f64,
    delivered_bits: u64,
}

impl EnergyMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Records a radio-on interval at a given DC draw.
    pub fn record_airtime(&mut self, duration: Seconds, draw: Watts) {
        assert!(duration.value() >= 0.0, "negative duration");
        self.joules += draw.value() * duration.value();
    }

    /// Records a fixed energy cost (e.g. a control message).
    pub fn record_fixed(&mut self, joules: f64) {
        assert!(joules >= 0.0, "negative energy");
        self.joules += joules;
    }

    /// Credits successfully delivered bits.
    pub fn record_delivered(&mut self, bits: u64) {
        self.delivered_bits += bits;
    }

    /// Total energy consumed, joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Total bits delivered.
    pub fn delivered_bits(&self) -> u64 {
        self.delivered_bits
    }

    /// Delivered-bit efficiency in nJ/bit; `None` before any delivery.
    pub fn nj_per_bit(&self) -> Option<f64> {
        (self.delivered_bits > 0).then(|| self.joules * 1e9 / self.delivered_bits as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_efficiency_reproduced() {
        // 1.1 W for 1 s at 100 Mbps delivered = 11 nJ/bit.
        let mut m = EnergyMeter::new();
        m.record_airtime(Seconds::new(1.0), Watts::new(1.1));
        m.record_delivered(100_000_000);
        assert!((m.nj_per_bit().unwrap() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn losses_worsen_efficiency() {
        let mut m = EnergyMeter::new();
        m.record_airtime(Seconds::new(1.0), Watts::new(1.1));
        m.record_delivered(50_000_000); // half the packets lost
        assert!((m.nj_per_bit().unwrap() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn control_energy_accumulates() {
        let mut m = EnergyMeter::new();
        m.record_fixed(30e-6);
        m.record_fixed(30e-6);
        assert!((m.joules() - 60e-6).abs() < 1e-15);
    }

    #[test]
    fn no_delivery_no_efficiency() {
        let mut m = EnergyMeter::new();
        m.record_airtime(Seconds::new(1.0), Watts::new(1.0));
        assert!(m.nj_per_bit().is_none());
        assert_eq!(m.delivered_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_duration_rejected() {
        EnergyMeter::new().record_airtime(Seconds::new(-1.0), Watts::new(1.0));
    }
}
