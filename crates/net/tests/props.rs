//! Property-based tests for the network layer.

use mmx_antenna::tma::Tma;
use mmx_net::fdm::BandPlan;
use mmx_net::interference::adjacent_channel_leakage;
use mmx_net::sdm::{SdmScheduler, SdmSlot};
use mmx_net::EventQueue;
use mmx_units::{BitRate, Degrees, Hertz, Seconds};
use proptest::prelude::*;

proptest! {
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0.0f64..1000.0, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(Seconds::new(t), i);
        }
        let mut prev = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t.value() >= prev);
            prev = t.value();
        }
    }

    #[test]
    fn fdm_allocations_always_disjoint(
        demands_mbps in prop::collection::vec(1.0f64..40.0, 1..8)
    ) {
        let plan = BandPlan::ism_24ghz();
        let demands: Vec<BitRate> = demands_mbps.iter().map(|&m| BitRate::from_mbps(m)).collect();
        match plan.allocate(&demands) {
            Ok(chs) => {
                for i in 0..chs.len() {
                    prop_assert!(plan.band().contains_band(&chs[i].band()));
                    prop_assert!(chs[i].width.hz() >= plan.width_for(demands[i]).hz() - 1.0);
                    for j in i + 1..chs.len() {
                        prop_assert!(!chs[i].band().overlaps(&chs[j].band()));
                    }
                }
            }
            Err(_) => {
                // Exhaustion must only happen when total demand (plus
                // guards) really exceeds the band.
                let total: f64 = demands.iter().map(|d| plan.width_for(*d).hz()).sum();
                prop_assert!(total + (demands.len() as f64 - 1.0) * 1e6 > plan.band().bandwidth().hz());
            }
        }
    }

    #[test]
    fn sdm_slots_are_unique(
        aoas in prop::collection::vec(-55.0f64..55.0, 1..20),
        channels in 3usize..12,
    ) {
        let tma = Tma::new(8, Hertz::from_ghz(24.0), Hertz::from_mhz(1.0));
        let sched = SdmScheduler::new(tma);
        let dirs: Vec<Degrees> = aoas.iter().map(|&a| Degrees::new(a)).collect();
        if let Ok(slots) = sched.schedule(&dirs, channels) {
            for i in 0..slots.len() {
                prop_assert!(slots[i].channel < channels);
                for j in i + 1..slots.len() {
                    prop_assert!(slots[i] != slots[j], "slot collision {i}/{j}");
                }
            }
            prop_assert!(SdmScheduler::reuse_factor(&slots) >= 1.0);
        }
    }

    #[test]
    fn sdm_same_harmonic_distinct_channels(
        base in -40.0f64..40.0,
        n in 2usize..6,
    ) {
        // All nodes in (nearly) the same direction: one harmonic group.
        let tma = Tma::new(8, Hertz::from_ghz(24.0), Hertz::from_mhz(1.0));
        let sched = SdmScheduler::new(tma);
        let dirs: Vec<Degrees> = (0..n).map(|k| Degrees::new(base + k as f64 * 0.01)).collect();
        let slots = sched.schedule(&dirs, n).expect("fits");
        let mut chans: Vec<usize> = slots.iter().map(|s: &SdmSlot| s.channel).collect();
        chans.sort_unstable();
        chans.dedup();
        prop_assert_eq!(chans.len(), n);
    }

    #[test]
    fn acl_monotone(k in 0usize..10) {
        prop_assert!(adjacent_channel_leakage(k + 1) <= adjacent_channel_leakage(k));
        prop_assert!(adjacent_channel_leakage(k).value() <= 0.0);
    }
}
