//! Property-based tests for the network layer.

use mmx_antenna::tma::Tma;
use mmx_channel::response::Pose;
use mmx_channel::room::{Material, Room};
use mmx_channel::Vec2;
use mmx_net::ap::ApStation;
use mmx_net::control::Admission;
use mmx_net::fdm::{BandPlan, ChannelAssignment};
use mmx_net::interference::adjacent_channel_leakage;
use mmx_net::link::Backoff;
use mmx_net::node::NodeStation;
use mmx_net::sdm::{SdmScheduler, SdmSlot};
use mmx_net::sim::{
    run_batch_observed_with_threads, run_batch_with_threads, NetworkSim, SimConfig,
};
use mmx_net::{EventQueue, FaultConfig};
use mmx_units::{BitRate, Degrees, Hertz, Seconds};
use proptest::prelude::*;

/// A small faulted network: `n` low-rate sensors on an arc around the
/// AP (low demand keeps the packet count — and the test runtime —
/// bounded even over long simulated durations).
fn faulted_network(n: usize, faults: FaultConfig, duration: Seconds, seed: u64) -> NetworkSim {
    let mut cfg = SimConfig::standard();
    cfg.faults = Some(faults);
    cfg.duration = duration;
    cfg.seed = seed;
    cfg.walkers = 0;
    let room = Room::rectangular(6.0, 4.0, Material::Drywall);
    let ap = ApStation::with_tma(
        Pose::new(Vec2::new(5.7, 2.0), Degrees::new(180.0)),
        8,
        Hertz::from_mhz(1.0),
    );
    let ap_pos = Vec2::new(5.7, 2.0);
    let mut sim = NetworkSim::new(room, ap, cfg);
    for i in 0..n {
        let frac = (i as f64 + 0.5) / n as f64;
        let bearing = Degrees::new(180.0 - 30.0 + 60.0 * frac);
        let pos = ap_pos + Vec2::from_bearing(bearing) * 3.0;
        let pose = Pose::facing_toward(pos, ap_pos);
        sim.add_node(NodeStation::new(i as u16, pose, BitRate::new(50_000.0)));
    }
    sim
}

proptest! {
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0.0f64..1000.0, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(Seconds::new(t), i).expect("fresh queue accepts any finite time");
        }
        let mut prev = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t.value() >= prev);
            prev = t.value();
        }
    }

    #[test]
    fn fdm_allocations_always_disjoint(
        demands_mbps in prop::collection::vec(1.0f64..40.0, 1..8)
    ) {
        let plan = BandPlan::ism_24ghz();
        let demands: Vec<BitRate> = demands_mbps.iter().map(|&m| BitRate::from_mbps(m)).collect();
        match plan.allocate(&demands) {
            Ok(chs) => {
                for i in 0..chs.len() {
                    prop_assert!(plan.band().contains_band(&chs[i].band()));
                    prop_assert!(chs[i].width.hz() >= plan.width_for(demands[i]).hz() - 1.0);
                    for j in i + 1..chs.len() {
                        prop_assert!(!chs[i].band().overlaps(&chs[j].band()));
                    }
                }
            }
            Err(_) => {
                // Exhaustion must only happen when total demand (plus
                // guards) really exceeds the band.
                let total: f64 = demands.iter().map(|d| plan.width_for(*d).hz()).sum();
                prop_assert!(total + (demands.len() as f64 - 1.0) * 1e6 > plan.band().bandwidth().hz());
            }
        }
    }

    #[test]
    fn sdm_slots_are_unique(
        aoas in prop::collection::vec(-55.0f64..55.0, 1..20),
        channels in 3usize..12,
    ) {
        let tma = Tma::new(8, Hertz::from_ghz(24.0), Hertz::from_mhz(1.0));
        let sched = SdmScheduler::new(tma);
        let dirs: Vec<Degrees> = aoas.iter().map(|&a| Degrees::new(a)).collect();
        if let Ok(slots) = sched.schedule(&dirs, channels) {
            for i in 0..slots.len() {
                prop_assert!(slots[i].channel < channels);
                for j in i + 1..slots.len() {
                    prop_assert!(slots[i] != slots[j], "slot collision {i}/{j}");
                }
            }
            prop_assert!(SdmScheduler::reuse_factor(&slots) >= 1.0);
        }
    }

    #[test]
    fn sdm_same_harmonic_distinct_channels(
        base in -40.0f64..40.0,
        n in 2usize..6,
    ) {
        // All nodes in (nearly) the same direction: one harmonic group.
        let tma = Tma::new(8, Hertz::from_ghz(24.0), Hertz::from_mhz(1.0));
        let sched = SdmScheduler::new(tma);
        let dirs: Vec<Degrees> = (0..n).map(|k| Degrees::new(base + k as f64 * 0.01)).collect();
        let slots = sched.schedule(&dirs, n).expect("fits");
        let mut chans: Vec<usize> = slots.iter().map(|s: &SdmSlot| s.channel).collect();
        chans.sort_unstable();
        chans.dedup();
        prop_assert_eq!(chans.len(), n);
    }

    /// For a fixed jitter draw the retransmit delay never shrinks as
    /// the attempt count grows, never undercuts the base timeout, and
    /// never exceeds the cap plus its jitter allowance — for any
    /// policy, not just [`Backoff::standard`].
    #[test]
    fn backoff_delay_monotone_and_capped(
        base_ms in 1.0f64..200.0,
        max_ms in 200.0f64..2000.0,
        jitter_frac in 0.0f64..1.0,
        u in 0.0f64..1.0,
        attempts in 1u32..40,
    ) {
        let b = Backoff {
            base: Seconds::from_millis(base_ms),
            max: Seconds::from_millis(max_ms),
            jitter_frac,
        };
        let mut prev = 0.0f64;
        for attempt in 0..attempts {
            let d = b.delay(attempt, u).value();
            prop_assert!(d >= prev, "delay shrank at attempt {attempt}: {d} < {prev}");
            prop_assert!(d >= b.base.value(), "attempt {attempt} undercuts the base");
            prop_assert!(
                d <= b.max.value() * (1.0 + jitter_frac) + 1e-12,
                "attempt {attempt} exceeds the jittered cap: {d}"
            );
            prev = d;
        }
    }

    #[test]
    fn acl_monotone(k in 0usize..10) {
        prop_assert!(adjacent_channel_leakage(k + 1) <= adjacent_channel_leakage(k));
        prop_assert!(adjacent_channel_leakage(k).value() <= 0.0);
    }

    /// Per-node RNG stream independence: splitting a master seed into N
    /// node streams yields identical per-node draw sequences whether the
    /// streams are instantiated and drawn in node order, in reverse, or
    /// concurrently on worker threads. This is the property that lets
    /// the gather phase hand each node its own stream with no
    /// cross-node coupling.
    #[test]
    fn node_streams_are_order_independent(
        seed in any::<u64>(),
        n in 2usize..24,
        draws in 1usize..32,
    ) {
        use rand::Rng as _;
        let pull = |i: usize| -> Vec<u64> {
            let mut rng = mmx_net::streams::node_stream(seed, i);
            (0..draws).map(|_| rng.gen::<u64>()).collect()
        };
        let forward: Vec<Vec<u64>> = (0..n).map(pull).collect();
        let mut reversed: Vec<Vec<u64>> = (0..n).rev().map(pull).collect();
        reversed.reverse();
        let parallel: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n).map(|i| s.spawn(move || pull(i))).collect();
            handles.into_iter().map(|h| h.join().expect("stream worker")).collect()
        });
        prop_assert_eq!(&forward, &reversed, "stream draws depend on evaluation order");
        prop_assert_eq!(&forward, &parallel, "stream draws depend on threading");
        // And the streams really are distinct streams.
        for i in 1..n {
            prop_assert!(forward[0] != forward[i], "streams 0 and {} collide", i);
        }
    }

    /// Safety: whatever sequence of joins, leaves, refreshes and expiry
    /// scans hits the AP, no two live leases ever overlap in frequency.
    #[test]
    fn live_leases_never_overlap(
        ops in prop::collection::vec((0u8..4, 0u8..6, 1.0f64..30.0), 1..60)
    ) {
        let mut a = Admission::new(BandPlan::ism_24ghz());
        let lease = Seconds::from_millis(400.0);
        let mut now = Seconds::ZERO;
        for (op, node, mbps) in ops {
            now += Seconds::from_millis(50.0);
            match op {
                0 => { let _ = a.join_at(node.into(), BitRate::from_mbps(mbps), now); }
                1 => a.leave(node.into()),
                2 => { a.refresh(node.into(), now); }
                _ => { a.expire_stale(now, lease); }
            }
            let grants: Vec<ChannelAssignment> =
                (0u16..6).filter_map(|id| a.grant_of(id)).collect();
            for i in 0..grants.len() {
                for j in i + 1..grants.len() {
                    prop_assert!(
                        !grants[i].band().overlaps(&grants[j].band()),
                        "leases overlap after op {op} on node {node}"
                    );
                }
            }
        }
    }
}

mod reuse_factor_edges {
    use super::*;

    #[test]
    fn empty_slot_list_reports_unity() {
        assert_eq!(SdmScheduler::reuse_factor(&[]), 1.0);
    }

    #[test]
    fn colocated_nodes_get_no_reuse() {
        // All nodes in the same direction land in one harmonic group:
        // every slot needs its own channel, so nothing is reused.
        let tma = Tma::new(8, Hertz::from_ghz(24.0), Hertz::from_mhz(1.0));
        let sched = SdmScheduler::new(tma);
        let dirs = vec![Degrees::new(10.0); 5];
        let slots = sched
            .schedule(&dirs, 5)
            .expect("five channels fit five nodes");
        assert_eq!(SdmScheduler::reuse_factor(&slots), 1.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Liveness: under any control-plane loss rate below 1, every
    /// joining node eventually reaches Granted. The retransmit budget
    /// scales with the loss: at `p = (1-loss)²` per join round trip and
    /// ~1 attempt/s once the backoff caps, `duration` leaves the chance
    /// of a node stuck unadmitted below ~1e-10.
    #[test]
    fn every_node_eventually_granted_under_loss(
        loss in 0.0f64..0.5,
        seed in 1u64..1000,
    ) {
        let sim = faulted_network(2, FaultConfig::lossy(loss), Seconds::new(60.0), seed);
        let report = sim.run().expect("runs");
        prop_assert_eq!(
            report.recovery.granted_at_end, 2,
            "loss {} seed {} left a node unadmitted: {:?}", loss, seed, report.recovery
        );
        prop_assert_eq!(report.recovery.joins, 2);
        for n in &report.nodes {
            prop_assert!(n.sent > 0, "node {} never streamed", n.id);
        }
    }

    /// Determinism: the same seed produces a byte-identical report —
    /// packet trace included — at 1 and 8 worker threads.
    #[test]
    fn faulted_trace_identical_across_thread_counts(seed in 1u64..1000) {
        let mk = |s: u64| {
            let faults = FaultConfig::lossy(0.2)
                .with_churn(0.3, Seconds::from_millis(500.0));
            let mut sim = faulted_network(2, faults, Seconds::new(5.0), s);
            sim.config_mut().record_trace = true;
            sim
        };
        let sims: Vec<NetworkSim> = (0..4).map(|k| mk(seed.wrapping_add(k))).collect();
        let serial = run_batch_with_threads(&sims, 1);
        let parallel = run_batch_with_threads(&sims, 8);
        for (s, p) in serial.iter().zip(&parallel) {
            let s = s.as_ref().expect("serial runs");
            let p = p.as_ref().expect("parallel runs");
            prop_assert_eq!(&s.trace, &p.trace, "event traces diverge across thread counts");
            prop_assert_eq!(&s.recovery, &p.recovery);
            prop_assert_eq!(&s.nodes, &p.nodes);
        }
    }

    /// Observability determinism: the sim-domain JSONL trace (FSM
    /// transitions, control fates, fault markers) of the PR 2 fault
    /// scenario is byte-identical at 1 and 8 worker threads, and the
    /// metrics registries render identically too.
    #[test]
    fn observed_jsonl_trace_identical_across_thread_counts(seed in 1u64..1000) {
        let mk = |s: u64| {
            let faults = FaultConfig::lossy(0.2)
                .with_churn(0.3, Seconds::from_millis(500.0));
            faulted_network(2, faults, Seconds::new(5.0), s)
        };
        let sims: Vec<NetworkSim> = (0..4).map(|k| mk(seed.wrapping_add(k))).collect();
        let serial = run_batch_observed_with_threads(&sims, 1);
        let parallel = run_batch_observed_with_threads(&sims, 8);
        let cat = |runs: &[(Result<mmx_net::sim::NetworkReport, mmx_net::sim::SimError>, mmx_obs::Recorder)]| {
            runs.iter().map(|(_, r)| r.trace_jsonl()).collect::<String>()
        };
        let s_jsonl = cat(&serial);
        prop_assert_eq!(&s_jsonl, &cat(&parallel), "JSONL traces diverge across thread counts");
        for ((sr, srec), (pr, prec)) in serial.iter().zip(&parallel) {
            prop_assert_eq!(
                &sr.as_ref().expect("serial runs").nodes,
                &pr.as_ref().expect("parallel runs").nodes
            );
            prop_assert_eq!(srec.registry().render(), prec.registry().render());
        }
        // The concatenated batch trace replays into one timeline per
        // scenario, each with both nodes accounted for.
        let (events, bad) = mmx_obs::parse_jsonl(&s_jsonl);
        prop_assert_eq!(bad, 0);
        let runs = mmx_obs::replay(&events);
        prop_assert_eq!(runs.len(), 4);
        for run in &runs {
            prop_assert_eq!(run.nodes.len(), 2);
        }
    }

    /// Intra-sim determinism: one faulted, fading, walker-heavy sim run
    /// with the phase-parallel event loop at 1, 2, 4 and 8 worker
    /// threads produces a byte-identical packet trace, recovery
    /// metrics, JSONL observability trace and rendered registry.
    #[test]
    fn single_sim_identical_across_intra_thread_counts(seed in 1u64..1000) {
        let run_at = |threads: usize| {
            let faults = FaultConfig::lossy(0.15)
                .with_churn(0.2, Seconds::from_millis(500.0));
            let mut sim = faulted_network(4, faults, Seconds::new(3.0), seed);
            sim.config_mut().record_trace = true;
            sim.config_mut().walkers = 2;
            sim.config_mut().fading = Some(mmx_net::sim::FadingConfig::indoor());
            sim.config_mut().threads = threads;
            let mut rec = mmx_obs::Recorder::enabled();
            let report = sim.run_observed(&mut rec).expect("sim runs");
            (report, rec.trace_jsonl(), rec.registry().render())
        };
        let (base_report, base_jsonl, base_registry) = run_at(1);
        prop_assert!(!base_jsonl.is_empty());
        for threads in [2usize, 4, 8] {
            let (report, jsonl, registry) = run_at(threads);
            prop_assert_eq!(&base_report.trace, &report.trace,
                "packet traces diverge at {} threads", threads);
            prop_assert_eq!(&base_report.recovery, &report.recovery);
            prop_assert_eq!(&base_report.nodes, &report.nodes);
            prop_assert_eq!(&base_jsonl, &jsonl,
                "JSONL traces diverge at {} threads", threads);
            prop_assert_eq!(&base_registry, &registry);
        }
    }
}
