#![warn(missing_docs)]
//! # mmX — a millimeter-wave network for billions of things
//!
//! A full reimplementation (in simulation) of *"A Millimeter Wave Network
//! for Billions of Things"* (SIGCOMM '19): a 24 GHz network for low-power,
//! low-cost IoT devices built around **Over-The-Air Modulation** — the
//! node transmits a pure carrier and switches it between two orthogonal
//! fixed beams; the channel's unequal per-beam losses create the ASK
//! signal at the receiver, eliminating phased arrays and beam searching.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`units`] | dB/dBm/Hz/bit-rate types, link-budget arithmetic |
//! | [`dsp`] | complex baseband DSP: FFT, Goertzel, envelopes, stats |
//! | [`antenna`] | patch arrays, the orthogonal OTAM beams, phased arrays, TMA |
//! | [`channel`] | geometric room model, path tracing, blockage, mobility |
//! | [`rf`] | VCO/switch/LNA/mixer models, noise cascade, power & cost |
//! | [`phy`] | ASK/FSK/joint modulation, OTAM links, packets, BER, coding |
//! | [`net`] | FDM/SDM, initialization protocol, network simulator |
//! | [`baseline`] | beam-search protocols and Table 1 platforms |
//! | [`core`] | the high-level mmX API: [`core::Testbed`], nodes, APs, scenarios |
//!
//! ## Quickstart
//!
//! ```
//! use mmx::core::prelude::*;
//!
//! let testbed = Testbed::paper_default();
//! let node = testbed.node_pose_at(Vec2::new(1.5, 2.0));
//! let obs = testbed.observe(node, &[]);
//! println!("SNR with OTAM: {}, BER: {:.1e}", obs.snr_otam, obs.ber_otam);
//! assert!(obs.snr_otam.value() > 10.0);
//! ```
//!
//! See `examples/` for runnable applications and `crates/bench` for the
//! per-figure reproduction harness.

pub use mmx_antenna as antenna;
pub use mmx_baseline as baseline;
pub use mmx_channel as channel;
pub use mmx_core as core;
pub use mmx_dsp as dsp;
pub use mmx_net as net;
pub use mmx_phy as phy;
pub use mmx_rf as rf;
pub use mmx_units as units;
