//! Mall surveillance: twelve 4K cameras across a 20 m hall — the range
//! limits of §9.4 in action, plus the OTAM-vs-beam-search comparison
//! that motivates the design.
//!
//! Run with: `cargo run --example surveillance_mall`

use mmx::baseline::search::{
    search_overhead_fraction, BeamSearch, ExhaustiveSearch, FixedBeam, HierarchicalSearch,
};
use mmx::baseline::ConventionalNode;
use mmx::core::prelude::*;
use mmx::core::report::TextTable;
use mmx::units::Db;

fn main() {
    // --- The mmX deployment -------------------------------------------
    let report = scenario::surveillance(12)
        .duration(Seconds::new(1.0))
        .walkers(3)
        .seed(3)
        .run()
        .expect("network runs");

    let mut table = TextTable::new(["camera", "SINR dB", "PER", "goodput Mbps"]);
    for n in &report.nodes {
        table.row([
            format!("cam-{}", n.id),
            format!("{:.1}", n.mean_sinr_db),
            format!("{:.4}", n.per),
            format!("{:.1}", n.goodput_bps / 1e6),
        ]);
    }
    println!("== mmX: 12 cameras, 20 m hall ==");
    println!("{}", table.render());

    // --- What a beam-search system would pay ---------------------------
    // Each camera's phased-array alternative must re-search every time a
    // shopper crosses a beam (~every 500 ms in a busy mall).
    println!("== the beam-search alternative (per camera) ==");
    let node = ConventionalNode::standard();
    let quality = |steer: Degrees| -> Db { node.array().gain(steer, Degrees::new(-20.0)) };
    let coherence = Seconds::from_millis(500.0);
    let mut t2 = TextTable::new([
        "protocol",
        "probes",
        "latency µs",
        "node energy µJ",
        "airtime overhead",
    ]);
    let protocols: Vec<Box<dyn BeamSearch>> = vec![
        Box::new(ExhaustiveSearch::standard()),
        Box::new(HierarchicalSearch::standard()),
        Box::new(FixedBeam {
            steering: Degrees::new(0.0),
        }),
    ];
    for p in &protocols {
        let out = p.search(&node, &quality);
        t2.row([
            p.name().to_string(),
            out.cost.probes.to_string(),
            format!("{:.0}", out.cost.latency.micros()),
            format!("{:.1}", out.cost.node_energy_j * 1e6),
            format!(
                "{:.2}%",
                100.0 * search_overhead_fraction(&out.cost, coherence)
            ),
        ]);
    }
    t2.row([
        "mmX (OTAM)".to_string(),
        "0".to_string(),
        "0".to_string(),
        "0.0".to_string(),
        "0.00%".to_string(),
    ]);
    println!("{}", t2.render());
    println!("mmX needs no search at all: the modulation rides the beams.");
}
