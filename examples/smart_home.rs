//! Smart home: six HD cameras streaming to a hub while people walk
//! around (§1: "it can be used in smart homes to connect IoT sensors ...
//! to a home hub").
//!
//! Runs the network simulator twice — an empty home and a busy one with
//! two walkers — and prints the per-camera report.
//!
//! Run with: `cargo run --example smart_home`

use mmx::core::prelude::*;
use mmx::core::report::TextTable;

fn run(walkers: usize, label: &str) {
    let report = scenario::smart_home(6)
        .duration(Seconds::new(1.0))
        .walkers(walkers)
        .seed(7)
        .run()
        .expect("network runs");

    let mut table = TextTable::new([
        "camera",
        "sent",
        "delivered",
        "SINR dB",
        "PER",
        "goodput Mbps",
        "nJ/bit",
    ]);
    for n in &report.nodes {
        table.row([
            format!("cam-{}", n.id),
            n.sent.to_string(),
            n.delivered.to_string(),
            format!("{:.1}", n.mean_sinr_db),
            format!("{:.4}", n.per),
            format!("{:.1}", n.goodput_bps / 1e6),
            n.nj_per_bit
                .map(|x| format!("{x:.0}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("== {label} ==");
    println!("{}", table.render());
    println!(
        "aggregate goodput: {} | mean SINR {:.1} dB | SDM in use: {}\n",
        report.total_goodput(),
        report.mean_sinr_db(),
        report.used_sdm
    );
}

fn main() {
    run(0, "empty home");
    run(2, "busy home (2 people walking)");
}
