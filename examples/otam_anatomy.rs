//! OTAM anatomy: watch the modulation happen over the air.
//!
//! Renders ASCII views of the received envelope in the three channel
//! regimes of §6: clear LoS (ASK, normal polarity), blocked LoS (ASK,
//! inverted), and the rare equal-loss corner (FSK rescue) — the same
//! story as Figs. 4 and 9.
//!
//! Run with: `cargo run --example otam_anatomy`

use mmx::channel::blockage::HumanBlocker;
use mmx::core::prelude::*;
use mmx::dsp::envelope::magnitude;
use mmx::phy::joint::DemodPath;
use mmx::phy::packet::PREAMBLE;
use rand::SeedableRng;

fn sparkline(env: &[f64], cols: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = env.iter().cloned().fold(f64::MIN, f64::max).max(1e-30);
    let chunk = (env.len() / cols).max(1);
    env.chunks(chunk)
        .take(cols)
        .map(|c| {
            let m = c.iter().sum::<f64>() / c.len() as f64;
            BARS[((m / max) * 7.0).round() as usize]
        })
        .collect()
}

fn show(testbed: &Testbed, label: &str, node: Pose, blockers: &[HumanBlocker]) {
    let link = testbed.otam_link(node, blockers);
    let bits: Vec<bool> = PREAMBLE
        .iter()
        .cloned()
        .chain([true, false, true, true, false, false, true, false])
        .collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let wave = link.waveform(&bits, &mut rng);
    let env = magnitude(wave.samples());
    let rx = link.receive(&wave).expect("sync");
    println!("== {label} ==");
    println!("  envelope : {}", sparkline(&env, 100));
    println!(
        "  beams    : |h1| {:.2e}  |h0| {:.2e}  separation {}",
        link.channel().h1.abs(),
        link.channel().h0.abs(),
        link.channel().level_separation()
    );
    println!(
        "  decoded  : via {:?}, polarity {}, payload bits {:?}",
        rx.used,
        if rx.inverted { "INVERTED" } else { "normal" },
        &rx.bits[..8.min(rx.bits.len())]
    );
    println!();
}

fn main() {
    let testbed = Testbed::paper_default();
    let node = testbed.node_pose_at(Vec2::new(1.2, 2.0));

    // Fig. 4(a): clear LoS — Beam 1 dominates, bits arrive upright.
    show(&testbed, "clear line of sight (Fig. 4a / 9a)", node, &[]);

    // Fig. 4(b): a person blocks the LoS — Beam 0's reflections win and
    // every bit inverts; the preamble resolves it.
    let person = HumanBlocker {
        position: Vec2::new(3.4, 2.0),
        radius: 0.25,
        loss: Db::new(40.0),
    };
    show(&testbed, "line of sight blocked (Fig. 4b)", node, &[person]);

    // Fig. 9(b): rotate the node so both beams land with near-equal loss
    // — ASK collapses and the FSK tones take over.
    let ap = testbed.ap().position;
    let facing = (ap - Vec2::new(1.2, 2.0)).bearing();
    let mut rotated = Pose::new(Vec2::new(1.2, 2.0), facing);
    let mut fsk_shown = false;
    for extra in 0..1800 {
        rotated.facing = facing + Degrees::new(extra as f64 * 0.1);
        let link = testbed.otam_link(rotated, &[]);
        if link.channel().level_separation().value() < 1.0
            && link
                .channel()
                .gain(mmx::antenna::beams::OtamBeam::Beam1)
                .value()
                > -85.0
        {
            show(
                &testbed,
                "equal per-beam loss (Fig. 9b) — FSK rescues the link",
                rotated,
                &[],
            );
            fsk_shown = true;
            break;
        }
    }
    if !fsk_shown {
        println!("(no equal-loss orientation found in this room — rare by design, §6.2)");
    }

    // Confirm the joint demodulator used FSK in the last case.
    let link = testbed.otam_link(rotated, &[]);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let bits: Vec<bool> = PREAMBLE.iter().cloned().chain([true, false]).collect();
    let wave = link.waveform(&bits, &mut rng);
    if let Some(rx) = link.receive(&wave) {
        if rx.used == DemodPath::Fsk {
            println!("joint demodulator confirmed: decoded via FSK.");
        } else {
            println!("joint demodulator used ASK at this orientation.");
        }
    }
}
