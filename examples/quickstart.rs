//! Quickstart: one node, one AP, one packet — end to end.
//!
//! Builds the paper's testbed, places an HD camera 4.3 m from the AP,
//! checks the analytic link, then pushes a real packet through the
//! sample-level OTAM waveform simulation (beam switching → channel →
//! AWGN → envelope/FSK demodulation → CRC).
//!
//! Run with: `cargo run --example quickstart`

use mmx::core::prelude::*;
use mmx::phy::packet::Packet;
use rand::SeedableRng;

fn main() {
    // The 6 m × 4 m lab of §9, AP on the east wall.
    let testbed = Testbed::paper_default();

    // A node on the west side, facing the AP (scenario 1 of Fig. 12).
    let node_pose = testbed.node_pose_at(Vec2::new(1.5, 2.0));

    // --- Analytic link (what Figs. 10/12 plot) -------------------------
    let obs = testbed.observe(node_pose, &[]);
    println!("== analytic link ==");
    println!("SNR with OTAM     : {}", obs.snr_otam);
    println!("SNR without OTAM  : {} (Beam 1 only)", obs.snr_beam1);
    println!("ASK level depth   : {}", obs.separation);
    println!("polarity inverted : {}", obs.inverted);
    println!("BER with OTAM     : {:.2e}", obs.ber_otam);
    println!("BER without OTAM  : {:.2e}", obs.ber_beam1);

    // --- Sample-level packet transfer ----------------------------------
    let link = testbed.otam_link(node_pose, &[]);
    let packet = Packet::new(1, 42, &b"hello from a 1.1 W mmWave node"[..]);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let (rx, parsed) = link.send_packet(&packet, &mut rng);

    println!("\n== waveform-level packet ==");
    let rx = rx.expect("frame sync");
    println!("sync offset       : {} symbols", rx.sync_offset);
    println!("demodulated via   : {:?}", rx.used);
    println!(
        "measured SNR      : {}",
        rx.snr.expect("preamble SNR estimate")
    );
    match parsed {
        Ok(p) => {
            assert_eq!(p, packet);
            println!(
                "payload delivered : {:?}",
                std::str::from_utf8(&p.payload).unwrap()
            );
        }
        Err(e) => println!("packet lost: {e:?}"),
    }

    // --- The headline numbers ------------------------------------------
    let node = MmxNode::new(1, node_pose, BitRate::from_mbps(100.0));
    println!("\n== node hardware ==");
    println!("power draw        : {}", node.power_draw());
    println!(
        "energy efficiency : {:.1} nJ/bit at 100 Mbps",
        node.nominal_energy_per_bit_nj(&MmxConfig::paper())
    );
}
