//! Autonomous car: eight surround cameras to the in-vehicle AP
//! (§1 footnote 2: "Autonomous cars will be equipped with at least 8
//! cameras for a 360-degree surrounding coverage").
//!
//! The metal cabin is a reflector-rich environment — the best case for
//! OTAM's reflected Beam-0 paths. The example also shows the
//! initialization phase explicitly: each camera joins over the control
//! plane and tunes its VCO to the granted channel.
//!
//! Run with: `cargo run --example autonomous_car`

use mmx::core::prelude::*;
use mmx::core::report::TextTable;
use mmx::net::control::Admission;
use mmx::net::control::ControlMsg;
use mmx::net::fdm::BandPlan;

fn main() {
    // --- Initialization phase (§7a): join + grant over BLE -------------
    println!("== initialization phase ==");
    let mut admission = Admission::new(BandPlan::ism_24ghz());
    let mut nodes: Vec<MmxNode> = (0..8)
        .map(|i| {
            MmxNode::new(
                i,
                Pose::new(Vec2::new(0.5 + 0.5 * i as f64, 0.5), Degrees::new(0.0)),
                BitRate::from_mbps(20.0),
            )
        })
        .collect();
    for node in &mut nodes {
        let grants = admission
            .join(node.id(), node.demand())
            .expect("band fits 8 cameras");
        for g in grants {
            if let ControlMsg::Grant {
                node: id,
                center_hz,
                width_hz,
                ..
            } = g
            {
                if id == node.id() {
                    let tuned = node.tune(Hertz::new(center_hz));
                    println!(
                        "cam-{id}: granted {:.1} MHz at {:.4} GHz, VCO tuned: {tuned}",
                        width_hz / 1e6,
                        center_hz / 1e9
                    );
                }
            }
        }
    }

    // --- Transmission phase ---------------------------------------------
    println!("\n== transmission phase ==");
    let report = scenario::vehicle()
        .duration(Seconds::new(1.0))
        .seed(11)
        .run()
        .expect("cabin network runs");

    let mut table = TextTable::new(["camera", "SINR dB", "min SINR", "PER", "goodput Mbps"]);
    for n in &report.nodes {
        table.row([
            format!("cam-{}", n.id),
            format!("{:.1}", n.mean_sinr_db),
            format!("{:.1}", n.min_sinr_db),
            format!("{:.4}", n.per),
            format!("{:.1}", n.goodput_bps / 1e6),
        ]);
    }
    println!("{}", table.render());
    println!(
        "aggregate: {} across 8 cameras ({} demanded)",
        report.total_goodput(),
        BitRate::from_mbps(160.0)
    );
}
