//! Rate adaptation: stretching mmX past the paper's 18 m.
//!
//! The node's 100 Mbps ceiling is a *switch-speed* limit, not a link
//! budget. Clocking the SPDT slower buys 3 dB per halving, so a camera
//! that only needs 10 Mbps keeps streaming far beyond the fixed-rate
//! range — and ARQ mops up the residual losses. This example walks a
//! camera away from the AP and reports the adapted rate, the predicted
//! BER, and the ARQ-protected goodput at each distance.
//!
//! Run with: `cargo run --example rate_adaptation`

use mmx::channel::room::{Material, Room};
use mmx::core::prelude::*;
use mmx::core::report::TextTable;
use mmx::core::{MmxConfig, Testbed};
use mmx::net::arq::{effective_goodput, ArqConfig};
use mmx::phy::rate::RateAdapter;

fn main() {
    // A 40 m hall.
    let room = Room::rectangular(42.0, 4.0, Material::Drywall);
    let ap = Pose::new(Vec2::new(41.5, 2.0), Degrees::new(180.0));
    let testbed = Testbed::new(room, ap, MmxConfig::paper());
    let adapter = RateAdapter::standard();
    let arq = ArqConfig::standard();

    let mut table = TextTable::new([
        "distance m",
        "SNR@100MHz dB",
        "rate Mbps",
        "BER",
        "ARQ goodput Mbps",
    ]);
    let packet_bits = 1400 * 8;
    for d in (2..=40).step_by(2) {
        let pos = Vec2::new(ap.position.x - d as f64, 2.0);
        let obs = testbed.observe(testbed.node_pose_at(pos), &[]);
        let snr_ref = obs.snr_otam - Db::new(6.0); // 25 MHz → 100 MHz noise
        match adapter.select(snr_ref, obs.separation) {
            Some(rate) => {
                let ber = adapter.ber_at(snr_ref, obs.separation, rate);
                let per = 1.0 - (1.0 - ber).powi(packet_bits);
                let goodput = effective_goodput(rate, per, &arq);
                table.row([
                    format!("{d}"),
                    format!("{:.1}", snr_ref.value()),
                    format!("{:.0}", rate.mbps()),
                    format!("{ber:.1e}"),
                    format!("{:.1}", goodput.mbps()),
                ]);
            }
            None => {
                table.row([
                    format!("{d}"),
                    format!("{:.1}", snr_ref.value()),
                    "-".into(),
                    "-".into(),
                    "0.0".into(),
                ]);
            }
        }
    }
    println!("== rate adaptation down a 40 m hall ==");
    println!("{}", table.render());
    println!(
        "The paper's fixed 100 Mbps works to ~18 m; adaptation keeps an HD camera\n\
         (10 Mbps) alive far beyond, and ARQ ({} retries) hides the residual PER.",
        arq.max_retries
    );
}
