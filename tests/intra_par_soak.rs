//! Intra-sim parallelism soak: one large faulted, fading, walker-heavy
//! simulation run through the phase-parallel event loop (DESIGN.md §9)
//! at 1 and 8 gather threads, byte-diffing everything the run produces —
//! the packet trace, the recovery metrics, the observability JSONL, the
//! rendered metrics registry, and a CSV rendering of the per-node
//! reports.
//!
//! The node count defaults to a tier-1-friendly 48; the CI
//! `intra_par_soak` job widens it to the acceptance point's 200 via the
//! `MMX_SOAK_NODES` environment variable.

use mmx_channel::response::Pose;
use mmx_channel::room::{Material, Room};
use mmx_channel::Vec2;
use mmx_net::ap::ApStation;
use mmx_net::node::NodeStation;
use mmx_net::sim::{FadingConfig, NetworkReport, NetworkSim, SimConfig};
use mmx_net::FaultConfig;
use mmx_units::{BitRate, Degrees, Hertz, Seconds};

fn soak_nodes() -> usize {
    std::env::var("MMX_SOAK_NODES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(48)
}

/// A dense sensor network exercising every gather-phase code path:
/// control-plane faults, Rician fading, walker blockage, SDM spatial
/// reuse and per-node RNG streams.
fn scale_network(n: usize, seed: u64, threads: usize) -> NetworkSim {
    let room = Room::rectangular(6.0, 4.0, Material::Drywall);
    let ap_pos = Vec2::new(5.7, 2.0);
    let ap = ApStation::with_tma(
        Pose::new(ap_pos, Degrees::new(180.0)),
        32,
        Hertz::from_mhz(1.0),
    );
    let mut cfg = SimConfig::standard();
    cfg.duration = Seconds::new(0.5);
    cfg.seed = seed;
    cfg.walkers = 2;
    cfg.fading = Some(FadingConfig::indoor());
    cfg.faults = Some(FaultConfig::lossy(0.1));
    cfg.sdm_channel_width = Hertz::from_mhz(3.0);
    cfg.record_trace = true;
    cfg.threads = threads;
    let mut sim = NetworkSim::new(room, ap, cfg);
    for i in 0..n {
        // A deterministic fan of positions inside the AP's field of
        // view (golden-angle spiral keeps neighbors apart).
        let frac = (i as f64 + 0.5) / n as f64;
        let bearing = Degrees::new(180.0 - 50.0 + 100.0 * frac);
        let dist = 1.2 + 2.4 * ((i as f64 * 0.618_033_988_75).fract());
        let pos = ap_pos + Vec2::from_bearing(bearing) * dist;
        let pose = Pose::facing_toward(pos, ap_pos);
        sim.add_node(NodeStation::new(i as u16, pose, BitRate::from_mbps(1.0)));
    }
    sim
}

/// CSV rendering of the per-node reports — the byte-diff surface for
/// the "CSVs identical" acceptance check (floats print via Rust's
/// shortest-round-trip formatter, a pure function of the bit pattern).
fn to_csv(report: &NetworkReport) -> String {
    let mut out = String::from("id,sent,delivered,mean_sinr_db,min_sinr_db,per,goodput_bps\n");
    for r in &report.nodes {
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            r.id, r.sent, r.delivered, r.mean_sinr_db, r.min_sinr_db, r.per, r.goodput_bps
        ));
    }
    out
}

fn run_at(n: usize, threads: usize) -> (NetworkReport, String, String) {
    let mut rec = mmx_obs::Recorder::enabled();
    let report = scale_network(n, 23, threads)
        .run_observed(&mut rec)
        .expect("soak sim runs");
    (report, rec.trace_jsonl(), rec.registry().render())
}

#[test]
fn soak_byte_identical_at_1_and_8_threads() {
    let n = soak_nodes();
    let (serial, serial_jsonl, serial_registry) = run_at(n, 1);
    assert!(!serial.trace.is_empty(), "soak run must trace packets");
    assert!(!serial_jsonl.is_empty(), "soak run must trace events");

    let (parallel, parallel_jsonl, parallel_registry) = run_at(n, 8);
    assert_eq!(
        serial.nodes, parallel.nodes,
        "{n}-node per-node reports diverge at 8 threads"
    );
    assert_eq!(
        serial.trace, parallel.trace,
        "{n}-node packet traces diverge at 8 threads"
    );
    assert_eq!(
        serial.recovery, parallel.recovery,
        "{n}-node recovery metrics diverge at 8 threads"
    );
    assert_eq!(
        serial_jsonl, parallel_jsonl,
        "{n}-node observability JSONL diverges at 8 threads"
    );
    assert_eq!(
        serial_registry, parallel_registry,
        "{n}-node metrics registries diverge at 8 threads"
    );
    assert_eq!(
        to_csv(&serial),
        to_csv(&parallel),
        "{n}-node CSVs diverge at 8 threads"
    );
}
