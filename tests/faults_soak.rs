//! Fault-injection soak: a seed sweep at the acceptance point — 20%
//! control-message loss plus nonzero churn — asserting that no run
//! panics, that every surviving node re-reaches `Granted`, and that the
//! reports (recovery metrics included) are identical at 1 and 8 worker
//! threads.
//!
//! The sweep width defaults to 24 seeds; CI widens it via the
//! `MMX_SOAK_SEEDS` environment variable.

use mmx_channel::response::Pose;
use mmx_channel::room::{Material, Room};
use mmx_channel::Vec2;
use mmx_net::ap::ApStation;
use mmx_net::node::NodeStation;
use mmx_net::sim::{run_batch_with_threads, NetworkSim, SimConfig};
use mmx_net::{FaultConfig, FaultInjector};
use mmx_units::{BitRate, Degrees, Hertz, Seconds};

const NODES: usize = 4;
const DURATION: Seconds = Seconds::new(60.0);
const REJOIN: Seconds = Seconds::new(0.6);

/// A crashed node needs one join round trip to settle; this margin
/// leaves the chance of a legitimate straggler below ~1e-7 per node at
/// 20% loss (attempts every ≤1 s once the backoff caps, each landing
/// with probability 0.64).
const SETTLE_MARGIN: Seconds = Seconds::new(15.0);

fn soak_faults() -> FaultConfig {
    FaultConfig::lossy(0.2).with_churn(0.25, REJOIN)
}

fn soak_sim(seed: u64) -> NetworkSim {
    let mut cfg = SimConfig::standard();
    cfg.faults = Some(soak_faults());
    cfg.duration = DURATION;
    cfg.seed = seed;
    cfg.walkers = 0;
    let room = Room::rectangular(6.0, 4.0, Material::Drywall);
    let ap_pos = Vec2::new(5.7, 2.0);
    let ap = ApStation::with_tma(
        Pose::new(ap_pos, Degrees::new(180.0)),
        8,
        Hertz::from_mhz(1.0),
    );
    let mut sim = NetworkSim::new(room, ap, cfg);
    for i in 0..NODES {
        let frac = (i as f64 + 0.5) / NODES as f64;
        let bearing = Degrees::new(180.0 - 30.0 + 60.0 * frac);
        let pos = ap_pos + Vec2::from_bearing(bearing) * 3.0;
        sim.add_node(NodeStation::new(
            i as u16,
            Pose::facing_toward(pos, ap_pos),
            BitRate::new(50_000.0),
        ));
    }
    sim
}

fn seed_count() -> u64 {
    std::env::var("MMX_SOAK_SEEDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(24)
}

/// Per-node end-state expectations, recomputed from the same fault
/// schedule the simulator draws (the injector is deterministic in
/// `(config, seed)` and the crash schedule is its first query).
struct Expected {
    /// Nodes whose last rejoin fires before the run ends.
    alive: usize,
    /// Alive nodes whose last rejoin leaves at least `SETTLE_MARGIN`
    /// of re-admission time — these MUST be `Granted` at the end.
    settled: usize,
}

fn expected(seed: u64) -> Expected {
    let mut inj = FaultInjector::new(soak_faults(), seed);
    let crashes = inj.crash_schedule(NODES, DURATION);
    let mut last_rejoin = [Seconds::ZERO; NODES];
    for c in &crashes {
        last_rejoin[c.node] = c.at + REJOIN;
    }
    Expected {
        alive: last_rejoin.iter().filter(|&&r| r < DURATION).count(),
        settled: last_rejoin
            .iter()
            .filter(|&&r| r + SETTLE_MARGIN < DURATION)
            .count(),
    }
}

#[test]
fn soak_surviving_nodes_recover_at_every_seed() {
    let sims: Vec<NetworkSim> = (0..seed_count()).map(soak_sim).collect();
    let reports = run_batch_with_threads(&sims, 8);
    for (seed, report) in reports.iter().enumerate() {
        let report = report.as_ref().expect("soak run must not fail");
        let want = expected(seed as u64);
        let rec = &report.recovery;
        assert_eq!(
            rec.joins, NODES as u64,
            "seed {seed}: a node never completed its first admission: {rec:?}"
        );
        assert_eq!(
            rec.alive_at_end, want.alive,
            "seed {seed}: alive count diverges from the crash schedule: {rec:?}"
        );
        assert!(
            rec.granted_at_end >= want.settled,
            "seed {seed}: {} settled survivors but only {} granted: {rec:?}",
            want.settled,
            rec.granted_at_end
        );
        assert!(rec.control_lost > 0, "seed {seed}: injector was quiet");
        if rec.crashes > 0 {
            assert!(
                rec.reclaimed_leases > 0,
                "seed {seed}: crashes never reclaimed spectrum: {rec:?}"
            );
        }
    }
}

#[test]
fn soak_reports_identical_at_1_and_8_threads() {
    // A slice of the sweep is enough for the invariance check — each
    // seed runs twice here.
    let sims: Vec<NetworkSim> = (0..seed_count().min(8)).map(soak_sim).collect();
    let serial = run_batch_with_threads(&sims, 1);
    let parallel = run_batch_with_threads(&sims, 8);
    for (seed, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        let s = s.as_ref().expect("serial soak run");
        let p = p.as_ref().expect("parallel soak run");
        assert_eq!(s, p, "seed {seed}: report depends on thread count");
    }
}
