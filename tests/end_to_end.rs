//! End-to-end integration: geometry → channel → OTAM waveform → packets.
//!
//! These tests cross every crate boundary: a room is traced, beams
//! synthesized, a waveform generated at sample level, noise injected, and
//! real packets recovered.

use mmx::channel::blockage::HumanBlocker;
use mmx::core::prelude::*;
use mmx::phy::joint::DemodPath;
use mmx::phy::packet::Packet;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[test]
fn packet_survives_the_paper_testbed() {
    let testbed = Testbed::paper_default();
    let pose = testbed.node_pose_at(Vec2::new(1.0, 2.0));
    let link = testbed.otam_link(pose, &[]);
    let packet = Packet::new(9, 77, vec![0xAB; 256]);
    let (rx, parsed) = link.send_packet(&packet, &mut rng(5));
    assert_eq!(parsed.expect("delivery"), packet);
    assert_eq!(rx.unwrap().used, DemodPath::Ask);
}

#[test]
fn packet_survives_blocked_los_with_inverted_polarity() {
    let testbed = Testbed::paper_default();
    let pose = testbed.node_pose_at(Vec2::new(1.0, 2.0));
    let person = HumanBlocker {
        position: Vec2::new(3.4, 2.0),
        radius: 0.25,
        loss: Db::new(40.0),
    };
    let link = testbed.otam_link(pose, &[person]);
    let packet = Packet::new(2, 1, vec![0x5A; 128]);
    let (rx, parsed) = link.send_packet(&packet, &mut rng(6));
    let rx = rx.expect("sync through reflections");
    assert!(rx.inverted, "blocked LoS must invert");
    assert_eq!(parsed.expect("delivery via Beam 0"), packet);
}

#[test]
fn waveform_ber_matches_theory_at_low_snr() {
    // Push many bits through a marginal link and compare the measured
    // BER with the closed form used by the evaluation harness.
    let testbed = Testbed::paper_default();
    // A far, rotated node: weak link.
    let pos = Vec2::new(0.4, 3.6);
    let facing = (testbed.ap().position - pos).bearing() + Degrees::new(45.0);
    let pose = Pose::new(pos, facing);
    let link = testbed.otam_link(pose, &[]);
    let theory = link.theoretical_ber();
    // Only meaningful when the theory BER is measurable in 40k bits.
    if !(1e-3..0.4).contains(&theory) {
        // Channel generated a clean link in this geometry; nothing to
        // compare statistically.
        return;
    }
    let mut bits: Vec<bool> = mmx::phy::packet::PREAMBLE.to_vec();
    let mut prbs = mmx::dsp::prbs::Prbs::prbs15(3);
    bits.extend(prbs.bits(40_000));
    let mut r = rng(8);
    let wave = link.waveform(&bits, &mut r);
    let rx = link.receive(&wave).expect("sync");
    let ber = mmx::phy::bits::bit_error_rate(&bits[32..], &rx.bits);
    assert!(
        ber < theory * 20.0 + 1e-4,
        "measured {ber} vs theory {theory}"
    );
}

#[test]
fn observation_and_waveform_agree_on_polarity() {
    let testbed = Testbed::paper_default();
    for (x, y) in [(1.0, 2.0), (2.0, 1.0), (1.5, 3.2)] {
        let pose = testbed.node_pose_at(Vec2::new(x, y));
        let blocker = HumanBlocker {
            position: Vec2::new((x + 5.8) / 2.0, (y + 2.0) / 2.0),
            radius: 0.25,
            loss: Db::new(40.0),
        };
        let obs = testbed.observe(pose, &[blocker]);
        let link = testbed.otam_link(pose, &[blocker]);
        let bits: Vec<bool> = mmx::phy::packet::PREAMBLE
            .iter()
            .cloned()
            .chain([true, false, true])
            .collect();
        let wave = link.waveform(&bits, &mut rng(4));
        if let Some(rx) = link.receive(&wave) {
            assert_eq!(
                rx.inverted, obs.inverted,
                "at ({x},{y}): waveform and analytic polarity disagree"
            );
        }
    }
}

#[test]
fn coding_pushes_marginal_links_through() {
    // The §9.3 extension: a link with raw BER ~1e-2 becomes usable with
    // the K=7 convolutional code.
    use mmx::phy::coding::convolutional;
    let testbed = Testbed::paper_default();
    // Find a marginal pose by scanning away from the AP.
    let mut link = None;
    'outer: for x in [0.4, 0.6, 0.8] {
        for rot in 0..12 {
            let pos = Vec2::new(x, 3.5);
            let facing = (testbed.ap().position - pos).bearing() + Degrees::new(rot as f64 * 15.0);
            let cand = testbed.otam_link(Pose::new(pos, facing), &[]);
            let ber = cand.theoretical_ber();
            if (1e-3..5e-2).contains(&ber) {
                link = Some(cand);
                break 'outer;
            }
        }
    }
    let Some(link) = link else {
        return; // no marginal geometry in this room — nothing to test
    };
    let mut prbs = mmx::dsp::prbs::Prbs::prbs9(1);
    let data = prbs.bits(2000);
    let coded = convolutional::encode(&data);
    let mut bits: Vec<bool> = mmx::phy::packet::PREAMBLE.to_vec();
    bits.extend(&coded);
    let wave = link.waveform(&bits, &mut rng(12));
    let rx = link.receive(&wave).expect("sync");
    let decoded = convolutional::decode(&rx.bits[..coded.len()]);
    let coded_ber = mmx::phy::bits::bit_error_rate(&data, &decoded);
    let raw_ber = mmx::phy::bits::bit_error_rate(&coded, &rx.bits[..coded.len()]);
    assert!(
        coded_ber < raw_ber || raw_ber == 0.0,
        "coding did not help: raw {raw_ber} coded {coded_ber}"
    );
}

#[test]
fn full_network_stack_delivers() {
    let report = scenario::smart_home(4)
        .duration(Seconds::new(0.5))
        .walkers(1)
        .seed(2)
        .run()
        .expect("runs");
    let total = report.total_goodput();
    assert!(
        total.mbps() > 25.0,
        "4 cameras × 10 Mbps delivered only {total}"
    );
}
