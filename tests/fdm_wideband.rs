//! Wideband FDM integration: two nodes transmitting on different FDM
//! channels into one shared capture, separated by the AP's channelizer
//! and both decoded — the software equivalent of the USRP receive path.

use mmx::channel::response::BeamChannel;
use mmx::dsp::awgn::AwgnSource;
use mmx::dsp::channelizer::Channelizer;
use mmx::dsp::Complex;
use mmx::phy::otam::{OtamConfig, OtamLink};
use mmx::phy::packet::Packet;
use mmx::units::{DbmPower, Hertz};
use rand::SeedableRng;

/// Builds an OTAM link generating directly at the wideband capture rate.
fn wideband_link(mark_db: f64, space_db: f64) -> OtamLink {
    let mut cfg = OtamConfig::standard();
    cfg.sample_rate = Hertz::from_mhz(100.0);
    cfg.samples_per_symbol = 100; // same 1 Msym/s as the narrowband link
    OtamLink::new(
        cfg,
        BeamChannel {
            h1: Complex::from_polar(10f64.powf(mark_db / 20.0), 0.3),
            h0: Complex::from_polar(10f64.powf(space_db / 20.0), -1.0),
        },
    )
}

/// A receive-side link at the channelized rate (only its demod config is
/// used).
fn narrow_rx() -> OtamLink {
    OtamLink::new(
        OtamConfig::standard(),
        BeamChannel {
            h1: Complex::ONE,
            h0: Complex::ONE,
        },
    )
}

#[test]
fn two_fdm_channels_separate_and_decode() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xFD);

    // Node A on the channel at −30 MHz, node B at +30 MHz.
    let link_a = wideband_link(-62.0, -74.0);
    let link_b = wideband_link(-65.0, -78.0);
    let pkt_a = Packet::new(1, 10, &b"channel A payload"[..]);
    let pkt_b = Packet::new(2, 20, &b"channel B payload -- different"[..]);

    let mut wave_a = link_a.clean_waveform(&pkt_a.to_bits());
    let mut wave_b = link_b.clean_waveform(&pkt_b.to_bits());
    wave_a.frequency_shift(Hertz::from_mhz(-30.0));
    wave_b.frequency_shift(Hertz::from_mhz(30.0));

    // Shared medium: superpose, pad to a common length, add one noise
    // realization at the AP's front end.
    // Pad the capture past the packets' end: the channelizer's group-
    // delay compensation consumes samples from the tail.
    let len = wave_a.len().max(wave_b.len()) + 1024;
    let mut capture = mmx::dsp::IqBuffer::zeros(len, Hertz::from_mhz(100.0));
    for (i, s) in wave_a.samples().iter().enumerate() {
        capture.samples_mut()[i] += *s;
    }
    for (i, s) in wave_b.samples().iter().enumerate() {
        capture.samples_mut()[i] += *s;
    }
    let noise_mw = mmx::units::thermal_noise_dbm(Hertz::from_mhz(100.0), mmx::units::Db::new(2.6))
        .milliwatts();
    AwgnSource::with_power(noise_mw).add_to(&mut capture, &mut rng);

    // AP side: channelize and decode each node independently.
    let chan = Channelizer::new(Hertz::from_mhz(100.0), 4);
    let rx = narrow_rx();

    let narrow_a = chan.extract(&capture, Hertz::from_mhz(-30.0));
    let got_a = rx.receive(&narrow_a).expect("node A syncs");
    assert_eq!(
        Packet::from_bits(&got_a.bits).expect("node A parses"),
        pkt_a
    );

    let narrow_b = chan.extract(&capture, Hertz::from_mhz(30.0));
    let got_b = rx.receive(&narrow_b).expect("node B syncs");
    assert_eq!(
        Packet::from_bits(&got_b.bits).expect("node B parses"),
        pkt_b
    );
}

#[test]
fn co_channel_collision_destroys_but_separated_channels_do_not() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let link_a = wideband_link(-62.0, -74.0);
    let link_b = wideband_link(-63.0, -76.0);
    let pkt_a = Packet::new(1, 1, vec![0x11; 64]);
    let pkt_b = Packet::new(2, 2, vec![0x22; 64]);

    let make_capture = |offset_b_mhz: f64, rng: &mut rand::rngs::StdRng| {
        let mut wave_a = link_a.clean_waveform(&pkt_a.to_bits());
        let mut wave_b = link_b.clean_waveform(&pkt_b.to_bits());
        wave_a.frequency_shift(Hertz::from_mhz(-30.0));
        wave_b.frequency_shift(Hertz::from_mhz(offset_b_mhz));
        let len = wave_a.len().max(wave_b.len()) + 1024;
        let mut capture = mmx::dsp::IqBuffer::zeros(len, Hertz::from_mhz(100.0));
        for (i, s) in wave_a.samples().iter().enumerate() {
            capture.samples_mut()[i] += *s;
        }
        for (i, s) in wave_b.samples().iter().enumerate() {
            capture.samples_mut()[i] += *s;
        }
        let noise = mmx::units::thermal_noise_dbm(Hertz::from_mhz(100.0), mmx::units::Db::new(2.6))
            .milliwatts();
        AwgnSource::with_power(noise).add_to(&mut capture, rng);
        capture
    };

    let chan = Channelizer::new(Hertz::from_mhz(100.0), 4);
    let rx = narrow_rx();

    // Separated: node A decodes cleanly.
    let ok = make_capture(30.0, &mut rng);
    let got = rx.receive(&chan.extract(&ok, Hertz::from_mhz(-30.0)));
    assert_eq!(
        Packet::from_bits(&got.expect("syncs").bits).expect("parses"),
        pkt_a
    );

    // Co-channel (both at −30 MHz, comparable power): node A's packet
    // cannot come through intact.
    let collided = make_capture(-30.0, &mut rng);
    let got = rx.receive(&chan.extract(&collided, Hertz::from_mhz(-30.0)));
    let intact = matches!(
        got.map(|r| Packet::from_bits(&r.bits)),
        Some(Ok(p)) if p == pkt_a
    );
    assert!(!intact, "co-channel collision should corrupt the packet");
}

#[test]
fn receive_power_is_preserved_through_the_channelizer() {
    // The extracted channel's SNR must track the wideband link budget:
    // 100 MHz of noise in the capture, 25 MHz after extraction.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let link = wideband_link(-62.0, -74.0);
    let pkt = Packet::new(1, 1, vec![0xAA; 32]);
    let mut wave = link.clean_waveform(&pkt.to_bits());
    let pad = mmx::dsp::IqBuffer::zeros(1024, Hertz::from_mhz(100.0));
    wave.extend(&pad);
    wave.frequency_shift(Hertz::from_mhz(20.0));
    let noise_mw = mmx::units::thermal_noise_dbm(Hertz::from_mhz(100.0), mmx::units::Db::new(2.6))
        .milliwatts();
    AwgnSource::with_power(noise_mw).add_to(&mut wave, &mut rng);
    let chan = Channelizer::new(Hertz::from_mhz(100.0), 4);
    let narrow = chan.extract(&wave, Hertz::from_mhz(20.0));
    let rx = narrow_rx().receive(&narrow).expect("syncs");
    let snr = rx.snr.expect("estimate").value();
    // Mark: 10 dBm − 18 − 62 = −70 dBm; symbol-band noise at 1 MHz ≈
    // −111.4 dBm ⇒ ~41 dB; allow estimator spread.
    let expected = DbmPower::new(10.0 - 18.0 - 62.0)
        - mmx::units::thermal_noise_dbm(Hertz::from_mhz(1.0), mmx::units::Db::new(2.6));
    assert!(
        (snr - expected.value()).abs() < 8.0,
        "snr {snr} vs expected {expected}"
    );
}
