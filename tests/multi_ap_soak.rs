//! Multi-AP coordination soak: a 4-cell corridor with fading, walker
//! blockage and a lossy inter-AP backhaul, run through the multi-AP
//! engine (DESIGN.md §10) at 1 and 8 gather threads and byte-diffed on
//! everything the run produces — per-node reports, the packet trace,
//! the handoff/coordination counters, the observability JSONL, the
//! rendered metrics registry, and a CSV rendering of the reports.
//!
//! The same seeded scenario is the acceptance check for roaming: at
//! least one handoff completes mid-run (its grant transferred over the
//! faulted backhaul) and make-before-break never double-delivers.
//!
//! The node count defaults to a tier-1-friendly 64; the CI
//! `multi_ap_soak` job widens it to the acceptance point's 300 via the
//! `MMX_SOAK_NODES` environment variable.

use mmx_channel::response::Pose;
use mmx_channel::room::{Material, Room};
use mmx_channel::Vec2;
use mmx_net::ap::ApStation;
use mmx_net::multi_ap::{MultiApConfig, MultiApReport, MultiApSim};
use mmx_net::node::NodeStation;
use mmx_net::sim::FadingConfig;
use mmx_net::FaultConfig;
use mmx_units::{BitRate, Degrees, Hertz, Seconds};

fn soak_nodes() -> usize {
    std::env::var("MMX_SOAK_NODES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(64)
}

const CORRIDOR_W: f64 = 16.0;
const CORRIDOR_D: f64 = 4.0;

/// The 4-AP corridor under stress: every multi-AP gather-phase code
/// path at once — fading, walker blockage, cross-cell interference,
/// roaming hysteresis, and a lossy epoch-stamped backhaul.
fn corridor(n: usize, seed: u64, threads: usize) -> MultiApSim {
    let room = Room::rectangular(CORRIDOR_W, CORRIDOR_D, Material::Drywall);
    let mut cfg = MultiApConfig::standard();
    cfg.seed = seed;
    cfg.duration = Seconds::new(2.0);
    cfg.sdm_channel_width = Hertz::from_mhz(1.5);
    cfg.path_loss_exponent = 2.6;
    cfg.coverage_range_m = 4.5;
    cfg.walkers = 2;
    cfg.fading = Some(FadingConfig::indoor());
    cfg.inter_ap_faults = Some(FaultConfig::lossy(0.25));
    cfg.record_trace = true;
    cfg.threads = threads;
    let mut sim = MultiApSim::new(room, cfg);
    for k in 0..4 {
        let x = CORRIDOR_W * (k as f64 + 0.5) / 4.0;
        sim.add_ap(ApStation::with_tma(
            Pose::new(Vec2::new(x, CORRIDOR_D - 0.3), Degrees::new(270.0)),
            16,
            Hertz::from_mhz(1.0),
        ));
    }
    for i in 0..n {
        let fx = ((i as f64 + 0.5) * 0.618_033_988_75).fract();
        let fy = ((i as f64 + 0.5) * 0.381_966_011_25).fract();
        let pos = Vec2::new(0.6 + fx * (CORRIDOR_W - 1.2), 0.6 + fy * 2.0);
        sim.add_node(NodeStation::new(
            i as u16,
            Pose::new(pos, Degrees::new(90.0)),
            BitRate::from_mbps(1.0),
        ));
    }
    sim
}

/// CSV rendering of the per-node reports — the byte-diff surface for
/// the "CSVs identical" acceptance check (floats print via Rust's
/// shortest-round-trip formatter, a pure function of the bit pattern).
fn to_csv(report: &MultiApReport) -> String {
    let mut out =
        String::from("id,admitted,ap,sent,delivered,mean_sinr_db,per,goodput_bps,handoffs\n");
    for r in &report.nodes {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            r.id,
            r.admitted,
            r.ap.index(),
            r.sent,
            r.delivered,
            r.mean_sinr_db,
            r.per,
            r.goodput_bps,
            r.handoffs
        ));
    }
    out
}

fn run_at(n: usize, threads: usize) -> (MultiApReport, String, String) {
    let mut rec = mmx_obs::Recorder::enabled();
    let report = corridor(n, 23, threads)
        .run_observed(&mut rec)
        .expect("soak sim runs");
    (report, rec.trace_jsonl(), rec.registry().render())
}

#[test]
fn soak_byte_identical_at_1_and_8_threads() {
    let n = soak_nodes();
    let (serial, serial_jsonl, serial_registry) = run_at(n, 1);
    assert!(!serial.trace.is_empty(), "soak run must trace packets");
    assert!(!serial_jsonl.is_empty(), "soak run must trace events");

    // The seeded roaming acceptance: fading + blockage push at least
    // one node across the hysteresis, its grant transfers over the
    // lossy backhaul, and make-before-break never double-delivers.
    assert!(
        serial.handoff.completed >= 1,
        "soak scenario must complete a mid-run handoff: {:?}",
        serial.handoff
    );
    assert_eq!(
        serial.handoff.duplicate_deliveries, 0,
        "make-before-break must not double-deliver"
    );

    let (parallel, parallel_jsonl, parallel_registry) = run_at(n, 8);
    assert_eq!(
        serial.nodes, parallel.nodes,
        "{n}-node per-node reports diverge at 8 threads"
    );
    assert_eq!(
        serial.trace, parallel.trace,
        "{n}-node packet traces diverge at 8 threads"
    );
    assert_eq!(
        serial.handoff, parallel.handoff,
        "{n}-node handoff counters diverge at 8 threads"
    );
    assert_eq!(
        serial.per_ap_admitted, parallel.per_ap_admitted,
        "{n}-node admission split diverges at 8 threads"
    );
    assert_eq!(
        serial_jsonl, parallel_jsonl,
        "{n}-node observability JSONL diverges at 8 threads"
    );
    assert_eq!(
        serial_registry, parallel_registry,
        "{n}-node metrics registries diverge at 8 threads"
    );
    assert_eq!(
        to_csv(&serial),
        to_csv(&parallel),
        "{n}-node CSVs diverge at 8 threads"
    );
}
