//! The paper's headline claims, as executable assertions.
//!
//! Each test quotes the claim it checks. These are the repository's
//! "did we actually reproduce the paper" gate; EXPERIMENTS.md records the
//! corresponding quantitative comparisons.

use mmx::baseline::Platform;
use mmx::core::prelude::*;
use mmx::rf::power::PowerLedger;
use mmx::rf::vco::Vco;
use mmx::units::Watts;

#[test]
fn claim_node_consumes_1_1w_and_11nj_per_bit() {
    // Abstract: "The maximum data rate of mmX's node is 100 Mbps and it
    // consumes 1.1 W. This results in an energy efficiency of 11 nJ/bit."
    let ledger = PowerLedger::mmx_node();
    assert!((ledger.total().value() - 1.1).abs() < 1e-9);
    assert!((ledger.energy_per_bit_nj(BitRate::from_mbps(100.0)) - 11.0).abs() < 1e-9);
}

#[test]
fn claim_more_efficient_than_wifi() {
    // Abstract: "...which is even lower than existing WiFi modules".
    assert!(Platform::mmx().energy_per_bit_nj() < Platform::wifi_80211n().energy_per_bit_nj());
}

#[test]
fn claim_vco_covers_the_entire_ism_band() {
    // §9.1/Fig. 7: "The VCO covers 23.95 GHz to 24.25 GHz by tuning the
    // control voltage from 3.5 V to 4.9 V. The provided frequency range
    // covers the entire 24 GHz ISM band."
    let vco = Vco::hmc533();
    let band = mmx::units::Band::ism_24ghz();
    assert!(vco.frequency(3.5).hz() <= band.low.hz());
    assert!(vco.frequency(4.9).hz() >= band.high.hz());
}

#[test]
fn claim_switch_limits_rate_to_100mbps() {
    // §9.1: "The maximum operating frequency of the RF switch is 100 MHz,
    // which limits the data rate of mmX's nodes to 100 Mbps."
    let fe = mmx::rf::frontend::NodeFrontEnd::standard();
    assert!((fe.max_bit_rate().mbps() - 100.0).abs() < 1e-9);
}

#[test]
fn claim_snr_10db_or_more_at_18m() {
    // Abstract: "mmX provides wireless links with SNR of 10 dB or more to
    // all nodes even at 18 meters." (§9.4: ≥15 dB facing, ≥9 dB not.)
    // Use a long corridor so an 18 m link exists.
    let room = mmx::channel::Room::rectangular(20.0, 4.0, mmx::channel::room::Material::Drywall);
    let ap = Pose::new(Vec2::new(19.5, 2.0), Degrees::new(180.0));
    let testbed = mmx::core::Testbed::new(room, ap, MmxConfig::paper());
    let pose = testbed.node_pose_at(Vec2::new(1.5, 2.0)); // 18 m away
    let obs = testbed.observe(pose, &[]);
    assert!(obs.snr_otam.value() >= 10.0, "18 m SNR = {}", obs.snr_otam);
}

#[test]
fn claim_otam_beats_no_otam_everywhere_in_the_room() {
    // §9.2/Fig. 10: OTAM's SNR dominates the Beam-1-only baseline at
    // every placement (it picks the stronger beam by construction).
    let testbed = Testbed::paper_default();
    for ix in 0..8 {
        for iy in 0..5 {
            let pos = Vec2::new(0.4 + ix as f64 * 0.6, 0.4 + iy as f64 * 0.75);
            for rot in [-45.0, 0.0, 45.0] {
                let facing = (testbed.ap().position - pos).bearing() + Degrees::new(rot);
                let obs = testbed.observe(Pose::new(pos, facing), &[]);
                assert!(
                    obs.snr_otam >= obs.snr_beam1 - Db::new(1e-9),
                    "OTAM lost at ({pos:?}, rot {rot})"
                );
            }
        }
    }
}

#[test]
fn claim_equal_loss_cases_are_rare_and_fsk_decodable() {
    // §6.3: "our empirical results show that there is still a small
    // chance (<10%) that the received power from Beam 1 and Beam 0
    // experiences the same loss" — and joint modulation decodes those.
    // Random placements and orientations (±60°), as in §9.2. Our
    // analytic two-element patterns have a wider beam-crossover region
    // than the paper's fabricated arrays, so the ambiguous fraction runs
    // above the measured <10% — the deviation is recorded in
    // EXPERIMENTS.md. What must hold: ambiguity is the minority case and
    // every strong-but-ambiguous link is rescued by FSK.
    use rand::{Rng, SeedableRng};
    let testbed = Testbed::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut total = 0;
    let mut ambiguous = 0;
    for _ in 0..400 {
        let pos = Vec2::new(rng.gen_range(0.4..5.2), rng.gen_range(0.4..3.6));
        let facing =
            (testbed.ap().position - pos).bearing() + Degrees::new(rng.gen_range(-60.0..60.0));
        let obs = testbed.observe(Pose::new(pos, facing), &[]);
        total += 1;
        if obs.separation.value() < 2.0 {
            ambiguous += 1;
            // The joint demodulator falls back to FSK and keeps the link
            // usable whenever the mark SNR is healthy.
            if obs.snr_otam.value() > 15.0 {
                assert!(
                    obs.ber_otam < 1e-3,
                    "ambiguous but strong link has BER {}",
                    obs.ber_otam
                );
            }
        }
    }
    let frac = ambiguous as f64 / total as f64;
    assert!(frac < 0.30, "ambiguous fraction = {frac}");
    assert!(ambiguous > 0, "expected some ambiguous placements");
}

#[test]
fn claim_initialization_is_one_shot_not_continuous() {
    // §7(a): "The initialization takes place only once using a WiFi or
    // Bluetooth module" — vs beam search which repeats per coherence
    // time. One exhaustive sweep costs more node energy than the entire
    // mmX control handshake.
    use mmx::baseline::search::{BeamSearch, ExhaustiveSearch};
    use mmx::baseline::ConventionalNode;
    let node = ConventionalNode::standard();
    let out = ExhaustiveSearch::standard()
        .search(&node, &|steer| node.array().gain(steer, Degrees::new(0.0)));
    let mmx_handshake_j = 2.0 * mmx::net::control::CONTROL_MSG_ENERGY_J;
    assert!(out.cost.node_energy_j > 10.0 * mmx_handshake_j);
}

#[test]
fn claim_conventional_radio_power_motivates_mmx() {
    // §1: PA 2.5 W + mixer 1 W + phased array "more than a watt" —
    // versus the whole mmX node at 1.1 W.
    let conventional = mmx::baseline::ConventionalNode::standard().tx_power_draw();
    let node = PowerLedger::mmx_node().total();
    assert!(conventional.value() > 4.0 * node.value());
    assert!((node - Watts::new(1.1)).0.abs() < 1e-9);
}
