//! Sample-level SDM: two nodes transmitting on the SAME frequency
//! channel from different directions, separated by the AP's
//! time-modulated array and both decoded.
//!
//! The paper could not do this in hardware ("due to limitations of
//! USRPs... we do not implement SDM in hardware", §9.5) — the sub-band
//! captures were combined in post-processing. Here the whole §7(b)
//! pipeline runs end to end: OTAM waveforms → plane waves from two
//! directions → TMA switching (Eq. 4) → harmonics at m·fp → channelizer
//! → OTAM receivers → CRC-clean packets.

use mmx::antenna::tma::Tma;
use mmx::channel::response::BeamChannel;
use mmx::dsp::awgn::AwgnSource;
use mmx::dsp::channelizer::Channelizer;
use mmx::dsp::{Complex, IqBuffer};
use mmx::phy::otam::{OtamConfig, OtamLink};
use mmx::phy::packet::Packet;
use mmx::units::{Db, Hertz};
use rand::SeedableRng;

const FS: f64 = 64e6; // capture rate
const FP: f64 = 8e6; // TMA switching fundamental

fn tma() -> Tma {
    // 8 elements switching at 8 MHz: harmonics every 8 MHz, exactly one
    // sample per switch slot at 64 MS/s.
    Tma::new(8, Hertz::from_ghz(24.0), Hertz::new(FP))
}

/// An OTAM link generating at the capture rate (1 Msym/s).
fn link(mark_db: f64, space_db: f64) -> OtamLink {
    let mut cfg = OtamConfig::standard();
    cfg.sample_rate = Hertz::new(FS);
    cfg.samples_per_symbol = 64;
    OtamLink::new(
        cfg,
        BeamChannel {
            h1: Complex::from_polar(10f64.powf(mark_db / 20.0), 0.5),
            h0: Complex::from_polar(10f64.powf(space_db / 20.0), -0.7),
        },
    )
}

/// Receiver config at the channelized rate (16 MS/s, same 1 Msym/s).
fn rx() -> OtamLink {
    let mut cfg = OtamConfig::standard();
    cfg.sample_rate = Hertz::new(FS / 4.0);
    cfg.samples_per_symbol = 16;
    OtamLink::new(
        cfg,
        BeamChannel {
            h1: Complex::ONE,
            h0: Complex::ONE,
        },
    )
}

#[test]
fn two_cochannel_nodes_separated_by_the_tma() {
    let t = tma();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5D);

    // Node A arrives on the harmonic-1 beam, node B on harmonic −2.
    let dir_a = t.harmonic_direction(1).expect("beam");
    let dir_b = t.harmonic_direction(-2).expect("beam");

    let link_a = link(-58.0, -72.0);
    let link_b = link(-60.0, -75.0);
    let pkt_a = Packet::new(1, 100, &b"same channel, beam one"[..]);
    let pkt_b = Packet::new(2, 200, &b"same channel, beam minus two"[..]);

    // Both nodes emit on the SAME frequency channel (DC at baseband).
    let wave_a = link_a.clean_waveform(&pkt_a.to_bits());
    let wave_b = link_b.clean_waveform(&pkt_b.to_bits());

    // The TMA hashes each arrival direction onto its harmonic.
    let thru_a = t.modulate_block(&wave_a, dir_a);
    let thru_b = t.modulate_block(&wave_b, dir_b);
    // Pad past the longer packet: the channelizer's group-delay
    // compensation consumes tail samples.
    let len = thru_a.len().max(thru_b.len()) + 1024;
    let mut capture = IqBuffer::zeros(len, Hertz::new(FS));
    for (i, s) in thru_a.samples().iter().enumerate() {
        capture.samples_mut()[i] += *s;
    }
    for (i, s) in thru_b.samples().iter().enumerate() {
        capture.samples_mut()[i] += *s;
    }
    let noise = mmx::units::thermal_noise_dbm(Hertz::new(FS), Db::new(2.6)).milliwatts();
    AwgnSource::with_power(noise).add_to(&mut capture, &mut rng);

    // AP baseband: pull each harmonic out and decode.
    let chan = Channelizer::new(Hertz::new(FS), 4);
    let receiver = rx();

    let narrow_a = chan.extract(&capture, Hertz::new(FP)); // +1·fp
    let got_a = receiver.receive(&narrow_a).expect("node A syncs");
    assert_eq!(
        Packet::from_bits(&got_a.bits).expect("node A parses"),
        pkt_a,
        "node A through harmonic +1"
    );

    let narrow_b = chan.extract(&capture, Hertz::new(-2.0 * FP)); // −2·fp
    let got_b = receiver.receive(&narrow_b).expect("node B syncs");
    assert_eq!(
        Packet::from_bits(&got_b.bits).expect("node B parses"),
        pkt_b,
        "node B through harmonic −2"
    );
}

#[test]
fn without_the_tma_the_same_two_nodes_collide() {
    // Control experiment: bypass the TMA (a plain dipole AP) and the two
    // co-channel signals land on top of each other.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5E);
    let link_a = link(-58.0, -72.0);
    let link_b = link(-60.0, -75.0);
    let pkt_a = Packet::new(1, 100, &b"same channel, beam one"[..]);
    let pkt_b = Packet::new(2, 200, &b"same channel, beam minus two"[..]);
    let wave_a = link_a.clean_waveform(&pkt_a.to_bits());
    let wave_b = link_b.clean_waveform(&pkt_b.to_bits());
    let mut capture = IqBuffer::zeros(wave_a.len().max(wave_b.len()), Hertz::new(FS));
    for (i, s) in wave_a.samples().iter().enumerate() {
        capture.samples_mut()[i] += *s;
    }
    for (i, s) in wave_b.samples().iter().enumerate() {
        capture.samples_mut()[i] += *s;
    }
    let noise = mmx::units::thermal_noise_dbm(Hertz::new(FS), Db::new(2.6)).milliwatts();
    AwgnSource::with_power(noise).add_to(&mut capture, &mut rng);

    // Try to decode node A straight off the capture (decimate to the
    // receiver rate first, channel at DC).
    let chan = Channelizer::new(Hertz::new(FS), 4);
    let narrow = chan.extract(&capture, Hertz::new(0.0));
    let intact = matches!(
        rx().receive(&narrow).map(|r| Packet::from_bits(&r.bits)),
        Some(Ok(p)) if p == pkt_a
    );
    assert!(!intact, "co-channel packets must collide without the TMA");
}

#[test]
fn tma_conversion_loss_is_within_budget() {
    // The harmonic copy carries sinc(πm/N)·(element gain) of the input —
    // the duty-cycle price of the single-chain design. Verify the
    // received symbol power through harmonic 1 against the analytic
    // coefficient.
    let t = tma();
    let dir = t.harmonic_direction(1).expect("beam");
    let tone = IqBuffer::tone(1.0, Hertz::new(0.0), 32_768, Hertz::new(FS));
    let thru = t.modulate_block(&tone, dir);
    let chan = Channelizer::new(Hertz::new(FS), 4);
    let narrow = chan.extract(&thru, Hertz::new(FP));
    let steady = &narrow.samples()[500..];
    let measured: f64 = steady.iter().map(|s| s.norm_sq()).sum::<f64>() / steady.len() as f64;
    let analytic = t.harmonic_response(1, dir).norm_sq();
    assert!(
        (10.0 * (measured / analytic).log10()).abs() < 1.0,
        "measured {measured:.3e} vs analytic {analytic:.3e}"
    );
}
