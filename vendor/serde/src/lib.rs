//! Offline stub of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and report
//! types but never actually serializes them (there is no `serde_json` or
//! similar in the dependency tree — CSV/JSON output is hand-rendered).
//! Since the build environment is fully offline, this stub supplies the two
//! derive macros as no-ops so the annotations keep compiling; the moment a
//! real serialization backend is added, this stub should be replaced by the
//! real crate.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
