//! Offline stub of the `bytes` crate: just [`Bytes`], a cheaply cloneable
//! immutable byte buffer backed by an `Arc`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bytes as a slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes { data: s.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes {
            data: s.as_bytes().into(),
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes {
            data: iter.into_iter().collect::<Vec<u8>>().into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn roundtrip() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn from_static() {
        let b = Bytes::from(&b"hello"[..]);
        assert_eq!(b.as_ref(), b"hello");
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
