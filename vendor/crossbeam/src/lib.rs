//! Offline stub of `crossbeam`: the multi-producer multi-consumer channel
//! and scoped-thread surface the workspace uses, implemented over
//! `std::sync` primitives.

pub mod channel {
    //! MPMC channels (`unbounded` / `bounded`) with clonable senders *and*
    //! receivers, built on a `Mutex<VecDeque>` + `Condvar` pair.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// The sending half of a channel. Clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel that holds at most `cap` in-flight items.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if state.items.len() >= cap => {
                        state = self.shared.not_full.wait(state).expect("channel lock");
                    }
                    _ => break,
                }
            }
            state.items.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next item, blocking until one is available or every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).expect("channel lock");
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Drains the channel until every sender disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.receivers -= 1;
            let last = state.receivers == 0;
            drop(state);
            if last {
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator over received items; ends on disconnect.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

pub mod thread {
    //! Scoped threads. std has native support since 1.63; re-export the
    //! crossbeam-shaped entry point over it.

    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = channel::bounded(4);
        let total = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let rx = rx.clone();
                let total = &total;
                s.spawn(move || {
                    for v in rx.iter() {
                        total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
            for _ in 0..2 {
                let tx = tx.clone();
                s.spawn(move || {
                    for v in 1..=100u64 {
                        tx.send(v).unwrap();
                    }
                });
            }
            drop(tx);
            drop(rx);
        });
        assert_eq!(total.into_inner(), 2 * 5050);
    }

    #[test]
    fn disconnect_errors() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());

        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }
}
