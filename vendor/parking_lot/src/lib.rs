//! Offline stub of `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API shape the workspace uses: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`), mirroring
//! parking_lot's no-poisoning behaviour. A poisoned std lock means a
//! panic already happened on another thread; propagating the inner guard
//! is exactly what parking_lot does.

use std::sync;

/// Mutual exclusion lock whose `lock` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock whose accessors never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified: consumes the guard, returns the re-acquired
    /// one (std semantics; parking_lot's in-place `wait(&mut guard)` cannot
    /// be expressed over `std::sync` guards without unsafe).
    pub fn wait_take<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match self.inner.wait(guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
