//! Offline, API-compatible subset of `rand` 0.8.
//!
//! The build environment for this repository is fully offline, so the real
//! `rand` crate cannot be vendored from crates.io. This stub implements the
//! exact API surface the workspace uses — [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] — on top of a deterministic xoshiro256++ core seeded
//! through SplitMix64 (the same seeding construction rand itself uses for
//! `seed_from_u64`).
//!
//! Determinism is the point: every generator in this crate is explicitly
//! seeded, there is **no** `thread_rng`/`from_entropy` entry point, so any
//! accidental use of ambient randomness in the workspace fails to compile.

/// Low-level entropy source: 64-bit outputs.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = split_mix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = split_mix64(sm.wrapping_add(0x9E37_79B9_7F4A_7C15));
            let bytes = sm.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn split_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from a generator's raw output
/// (the `Standard` distribution of real rand).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `gen_range` accepts (the `SampleRange` trait of real rand).
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Fills a byte slice with random data.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generator implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for rand's
    /// `StdRng`.
    ///
    /// Not the same stream as upstream `StdRng` (which is ChaCha12), but
    /// the workspace only requires that a given seed always produces the
    /// same stream, which this guarantees.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias kept for API compatibility — same engine as [`StdRng`].
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(-60.0..60.0);
            assert!((-60.0..60.0).contains(&x));
            let n = r.gen_range(2usize..12);
            assert!((2..12).contains(&n));
        }
    }

    #[test]
    fn mean_is_centred() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
