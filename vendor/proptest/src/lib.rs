//! Offline stub of `proptest`.
//!
//! Implements the subset the workspace's property tests use — the
//! [`proptest!`] macro, numeric-range / tuple / `any` / `collection::vec`
//! strategies, `prop_map`, and the `prop_assert*` / `prop_assume!` macros —
//! on a fully deterministic driver. Unlike real proptest there is no
//! shrinking and no persistence: every test function derives its RNG stream
//! from a hash of its own module path and name, so a failure reproduces
//! identically on every run and machine.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generator handed to strategies. Deterministic per test + case.
pub type TestRng = StdRng;

/// How a test case ended early.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert!` failed: the property does not hold.
    Fail(String),
    /// A `prop_assume!` failed: the input is outside the precondition and
    /// the case is discarded without counting.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Per-block configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn pick(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.pick(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.pick(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Strategy over a type's full standard distribution (`any::<T>()`).
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Generates arbitrary values of `T` (uniform over the type's range).
pub fn any<T>() -> Any<T>
where
    T: rand::StandardSample,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: rand::StandardSample> Strategy for Any<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        T::standard_sample(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Length specifications `vec` accepts: an exact size or a range.
    pub trait IntoSizeRange {
        /// Converts to a half-open `lo..hi` length range.
        fn into_size_range(self) -> core::ops::Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> core::ops::Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn into_size_range(self) -> core::ops::Range<usize> {
            self
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn into_size_range(self) -> core::ops::Range<usize> {
            let (lo, hi) = self.into_inner();
            lo..hi + 1
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates vectors whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let size = size.into_size_range();
        assert!(!size.is_empty(), "vec strategy needs a non-empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.clone());
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }
}

/// FNV-1a hash of a test's full path — the deterministic base seed.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property test: runs cases until `config.cases` succeed,
/// discarding rejected inputs, panicking on the first failure.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = name_seed(name);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let mut index: u64 = 0;
    let reject_limit = 1024 * config.cases as u64;
    while passed < config.cases {
        let mut rng = TestRng::seed_from_u64(base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= reject_limit,
                    "proptest '{name}': too many rejected inputs ({rejected}); \
                     loosen the prop_assume! preconditions"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case #{index}: {msg}");
            }
        }
        index += 1;
    }
}

/// Declares a block of property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_proptest(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::Strategy::pick(&($strategy), __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    __outcome
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

pub mod prelude {
    //! Everything a property-test module needs.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
    /// The crate itself, so `prop::collection::vec(...)` resolves.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -4.0f64..4.0, n in 1usize..9) {
            prop_assert!((-4.0..4.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn tuples_and_map(p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn vectors_respect_size(v in prop::collection::vec(any::<u8>(), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
        }

        #[test]
        fn assume_discards(a in 0u8..=255) {
            prop_assume!(a % 2 == 0);
            prop_assert!(a % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_applies(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use rand::SeedableRng;
        let strat = (0.0f64..1.0, 0u64..100).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::TestRng::seed_from_u64(1);
        let mut r2 = crate::TestRng::seed_from_u64(1);
        assert_eq!(strat.pick(&mut r1), strat.pick(&mut r2));
    }
}
