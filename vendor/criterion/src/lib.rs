//! Offline stub of `criterion`.
//!
//! Implements the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!`/`criterion_main!`
//! macros — with a simple calibrated wall-clock timer instead of criterion's
//! statistical machinery. Each benchmark prints `name  median-ish ns/iter`
//! so `cargo bench` produces useful numbers offline; `cargo bench --no-run`
//! compiles everything exactly as with the real crate.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier — re-export of `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-iteration measurement driver handed to benchmark closures.
pub struct Bencher {
    /// Total measured time accumulated by `iter`.
    elapsed: Duration,
    /// Iterations executed inside the measurement loop.
    iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming up and sizing the batch so the
    /// measured loop runs long enough to be meaningful.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up & batch sizing: grow the batch until it takes >= 5 ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch = (batch * 4).min(1 << 20);
        }
        // Measurement: a handful of batches, keep the total.
        let start = Instant::now();
        let rounds = 3u64;
        for _ in 0..rounds * batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = rounds * batch;
    }
}

/// Identifies a parameterized benchmark, e.g. `fft/radix2/1024`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Quantity processed per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, f);
        self
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work amount for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub sizes batches itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub sizes time itself.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoId, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.throughput, f);
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Conversion into a benchmark id string: accepts `&str` or [`BenchmarkId`].
pub trait IntoId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoId for BenchmarkId {
    fn into_id(self) -> String {
        self.full
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{name:<50}  (no measurement)");
        return;
    }
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            println!("{name:<50}  {ns_per_iter:>12.1} ns/iter  {per_sec:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            println!("{name:<50}  {ns_per_iter:>12.1} ns/iter  {per_sec:>14.0} B/s");
        }
        None => println!("{name:<50}  {ns_per_iter:>12.1} ns/iter"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(4));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fft", 1024).into_id(), "fft/1024");
        assert_eq!(BenchmarkId::from_parameter(7).into_id(), "7");
    }
}
